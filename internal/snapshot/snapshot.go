// Package snapshot implements the persistent on-disk form of a frozen
// TGDB: a versioned, checksummed, columnar single-file format
// (".etsnap") holding the schema graph, the instance graph's node and
// edge columns, and the planner's derived statistics. Save serializes a
// frozen tgm.InstanceGraph; Load reconstructs an identical frozen graph
// — same node IDs, same adjacency order, same statistics — without
// re-running generation or translation, which is what lets a server
// boot from disk and a registry serve many datasets it never paid to
// translate. LazyLoad opens the same file out of core: only the
// skeleton (schema, node ownership, the adjacency directory,
// statistics) is decoded at open; attribute columns fault in one at a
// time through a bounded internal/pager buffer pool, and each edge
// type's adjacency arrays materialize on its first traversal.
//
// # File layout
//
//	offset 0   magic    8 bytes  89 45 54 53 4E 41 50 0A ("\x89ETSNAP\n")
//	offset 8   version  uint32 LE (currently 2)
//	offset 12  count    uint32 LE (number of sections)
//	offset 16  section table: count × {tag [4]byte, offset uint64 LE,
//	           length uint64 LE, crc32 uint32 LE (Castagnoli)}
//	...        section payloads, in table order, at the recorded offsets
//
// The magic begins with a non-ASCII byte and ends with a newline, so
// text-mode corruption (BOM insertion, CRLF translation, truncation by
// a line-oriented tool) is caught at the first eight bytes. The section
// table makes the format mmap-friendly: every section's byte range is
// known before any payload is read, sections can be verified and
// decoded independently, and the lazy loader maps the file and defers
// column materialization per column payload.
//
// Six sections, all present in version 2:
//
//	META  node/edge/type counts, for post-decode cross-checks
//	SCHM  schema graph: node types, then edge types in per-source
//	      out-edge order (the order OutEdges must reproduce, since the
//	      presentation layer derives neighbor-column order from it)
//	NSKL  node skeleton, per node type: the type's global node IDs
//	      (delta-encoded) and a column directory — per attribute, the
//	      column payload's offset/length within NCOL and its CRC-32C
//	NCOL  concatenated attribute column payloads (a tag array of value
//	      kinds, then the non-null payloads), each independently
//	      decodable so one column can be faulted in without its
//	      neighbors
//	EDGE  per edge type — forward and reverse alike — the adjacency
//	      lists in CSR form: ascending sources, offsets, and the
//	      concatenated target runs (targets in insertion order), each
//	      array fixed-width uint32 LE so a load is a bulk conversion
//	      with exact preallocation — immediate on the eager path,
//	      deferred to each edge type's first traversal on the lazy one
//	STAT  internal/stats statistics: per-type counts and attribute
//	      NDVs, per-edge degree histograms
//
// Integrity and compatibility: a file that is not a snapshot fails with
// ErrBadMagic; a snapshot written by a different format version fails
// with *VersionError; a snapshot whose bytes do not decode — bad
// checksum, truncated section, out-of-range reference, impossible count
// — fails with *CorruptError naming the section and reason. Decoding
// never panics on hostile input. The eager path verifies every
// section's checksum before decoding; the lazy path verifies every
// section it decodes at open and defers NCOL integrity to per-column
// checksums at fault time, so damage in a column that is never queried
// is never even read. The version is a single ratchet: readers refuse
// versions they do not know rather than guessing, and format changes
// bump it (see docs/SNAPSHOT.md for the compat policy).
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/tgm"
)

// Version is the current snapshot format version. Version 2 split the
// version-1 NODE section into NSKL + NCOL so columns can load lazily.
const Version = 2

// magic identifies an .etsnap file. The leading 0x89 (non-ASCII) and
// trailing \n catch text-mode mangling, PNG-style.
var magic = [8]byte{0x89, 'E', 'T', 'S', 'N', 'A', 'P', '\n'}

// Section tags of format version 2.
const (
	secMeta   = "META"
	secSchema = "SCHM"
	secSkel   = "NSKL"
	secCols   = "NCOL"
	secEdges  = "EDGE"
	secStats  = "STAT"
)

// castagnoli is the CRC-32C table used for section checksums (hardware
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// headerFixed is the byte length of the fixed header before the
// section table.
const headerFixed = 8 + 4 + 4

// sectionEntrySize is the byte length of one section-table entry.
const sectionEntrySize = 4 + 8 + 8 + 4

// SectionInfo describes one section of a loaded snapshot.
type SectionInfo struct {
	Tag    string
	Offset uint64
	Length uint64
	CRC32  uint32
}

// Info summarizes a loaded snapshot file.
type Info struct {
	// Version is the file's format version.
	Version uint32
	// Bytes is the total file size.
	Bytes int64
	// Nodes and Edges are the instance graph's counts (from META,
	// cross-checked against the decoded graph).
	Nodes, Edges int
	// Sections lists the file's sections in table order.
	Sections []SectionInfo
}

// Snapshot is a TGDB reconstructed from disk: the schema graph, the
// frozen instance graph (statistics pre-attached), and file metadata.
type Snapshot struct {
	Schema *tgm.SchemaGraph
	Graph  *tgm.InstanceGraph
	Info   Info
}

// Save writes g as a version-2 snapshot to w and returns the number of
// bytes written. The graph must be frozen: a snapshot of a graph that
// can still change would capture an arbitrary intermediate state, and
// every consumer of the format assumes the immutability contract.
// Saving an out-of-core graph faults every column through its source.
func Save(w io.Writer, g *tgm.InstanceGraph) (int64, error) {
	if g == nil {
		return 0, fmt.Errorf("snapshot: nil graph")
	}
	if !g.Frozen() {
		return 0, fmt.Errorf("snapshot: graph is not frozen; freeze it before saving")
	}
	nskl, ncol, err := encodeNodeSections(g)
	if err != nil {
		return 0, fmt.Errorf("snapshot: encoding node columns: %w", err)
	}
	type section struct {
		tag     string
		payload []byte
	}
	sections := []section{
		{secMeta, encodeMeta(g)},
		{secSchema, encodeSchema(g.Schema())},
		{secSkel, nskl},
		{secCols, ncol},
		{secEdges, encodeEdges(g)},
		{secStats, encodeStats(g)},
	}

	header := make([]byte, 0, headerFixed+len(sections)*sectionEntrySize)
	header = append(header, magic[:]...)
	header = binary.LittleEndian.AppendUint32(header, Version)
	header = binary.LittleEndian.AppendUint32(header, uint32(len(sections)))
	offset := uint64(headerFixed + len(sections)*sectionEntrySize)
	for _, s := range sections {
		header = append(header, s.tag...)
		header = binary.LittleEndian.AppendUint64(header, offset)
		header = binary.LittleEndian.AppendUint64(header, uint64(len(s.payload)))
		header = binary.LittleEndian.AppendUint32(header, crc32.Checksum(s.payload, castagnoli))
		offset += uint64(len(s.payload))
	}

	written := int64(0)
	n, err := w.Write(header)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("snapshot: writing header: %w", err)
	}
	for _, s := range sections {
		n, err := w.Write(s.payload)
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("snapshot: writing %s section: %w", s.tag, err)
		}
	}
	return written, nil
}

// SaveFile writes g as a snapshot at path (atomically: a temp file in
// the same directory, renamed into place on success) and returns the
// file size.
func SaveFile(path string, g *tgm.InstanceGraph) (int64, error) {
	tmp, err := os.CreateTemp(dirOf(path), ".etsnap-*")
	if err != nil {
		return 0, fmt.Errorf("snapshot: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	n, err := Save(tmp, g)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		os.Remove(tmpName)
		return 0, err
	}
	return n, nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i+1]
		}
	}
	return "."
}

// Load reads and decodes the snapshot at path, reconstructing a frozen
// instance graph with its statistics attached. Failures are typed: a
// non-snapshot file is ErrBadMagic, a version mismatch is
// *VersionError, undecodable bytes are *CorruptError.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading %s: %w", path, err)
	}
	return Decode(data)
}

// Decode reconstructs a snapshot from its serialized bytes (the
// in-memory form of Load; Load is ReadFile + Decode).
//
// Aliasing contract: decoding reads directly from sub-slices of data —
// there is no intermediate per-section copy — and everything the
// returned Snapshot retains is freshly built (string values copy their
// bytes, columns are newly decoded slices). The caller may therefore
// reuse or discard data as soon as Decode returns; nothing in the
// result aliases it.
func Decode(data []byte) (*Snapshot, error) {
	sections, info, err := parseSections(data, nil)
	if err != nil {
		return nil, err
	}
	meta, err := decodeMeta(sections[secMeta])
	if err != nil {
		return nil, err
	}
	schema, edgeTypeOrder, err := decodeSchema(sections[secSchema], meta)
	if err != nil {
		return nil, err
	}
	graph, dir, err := decodeSkeleton(sections[secSkel], schema, meta)
	if err != nil {
		return nil, err
	}
	// Install every column eagerly, decoding each payload in place from
	// the NCOL sub-slice (whole-section checksum already verified, so
	// the per-column checksums are not re-checked here).
	ncol := sections[secCols]
	for _, tc := range dir {
		for ai, cm := range tc.cols {
			payload, err := cm.slice(ncol)
			if err != nil {
				return nil, err
			}
			col, err := decodeColumn(payload, tc.rows, tc.typeName, ai)
			if err != nil {
				return nil, err
			}
			if err := graph.InstallColumn(tc.typeName, ai, col); err != nil {
				return nil, corrupt(secCols, "installing column %s[%d]: %v", tc.typeName, ai, err)
			}
		}
	}
	if err := decodeEdges(sections[secEdges], graph, edgeTypeOrder, meta); err != nil {
		return nil, err
	}
	// The graph is complete: freeze before attaching statistics (Attach
	// only caches on frozen graphs) and before anyone can observe it.
	graph.Freeze()
	if err := decodeStats(sections[secStats], graph, edgeTypeOrder); err != nil {
		return nil, err
	}
	if n := graph.NumNodes(); n != meta.nodes {
		return nil, corrupt(secMeta, "node count mismatch: META says %d, NSKL decoded %d", meta.nodes, n)
	}
	if n := graph.NumEdges(); n != meta.edges {
		return nil, corrupt(secMeta, "edge count mismatch: META says %d, EDGE decoded %d", meta.edges, n)
	}
	info.Nodes, info.Edges = meta.nodes, meta.edges
	return &Snapshot{Schema: schema, Graph: graph, Info: info}, nil
}

// parseSections validates magic, version, and the section table, and
// returns the payload byte ranges (aliases of data). Each section's
// checksum is verified unless skipCRC reports the tag should be
// deferred — the lazy open skips the bulk NCOL section, whose integrity
// is re-established per column at fault time.
func parseSections(data []byte, skipCRC func(tag string) bool) (map[string][]byte, Info, error) {
	info := Info{Bytes: int64(len(data))}
	if len(data) < headerFixed {
		return nil, info, ErrBadMagic
	}
	if [8]byte(data[:8]) != magic {
		return nil, info, ErrBadMagic
	}
	info.Version = binary.LittleEndian.Uint32(data[8:12])
	if info.Version != Version {
		return nil, info, &VersionError{Got: info.Version, Want: Version}
	}
	count := int(binary.LittleEndian.Uint32(data[12:16]))
	tableEnd := headerFixed + count*sectionEntrySize
	if count < 0 || count > 64 || tableEnd > len(data) {
		return nil, info, corrupt("header", "section table (%d entries) exceeds file size %d", count, len(data))
	}
	sections := make(map[string][]byte, count)
	for i := 0; i < count; i++ {
		e := data[headerFixed+i*sectionEntrySize:]
		tag := string(e[:4])
		off := binary.LittleEndian.Uint64(e[4:12])
		length := binary.LittleEndian.Uint64(e[12:20])
		sum := binary.LittleEndian.Uint32(e[20:24])
		if off < uint64(tableEnd) || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, info, corrupt(tag, "section range [%d,+%d) exceeds file size %d", off, length, len(data))
		}
		payload := data[off : off+length]
		if skipCRC == nil || !skipCRC(tag) {
			if got := crc32.Checksum(payload, castagnoli); got != sum {
				return nil, info, corrupt(tag, "checksum mismatch: stored %08x, computed %08x", sum, got)
			}
		}
		if _, dup := sections[tag]; dup {
			return nil, info, corrupt(tag, "duplicate section")
		}
		sections[tag] = payload
		info.Sections = append(info.Sections, SectionInfo{Tag: tag, Offset: off, Length: length, CRC32: sum})
	}
	for _, tag := range []string{secMeta, secSchema, secSkel, secCols, secEdges, secStats} {
		if _, ok := sections[tag]; !ok {
			return nil, info, corrupt(tag, "section missing")
		}
	}
	return sections, info, nil
}
