package snapshot

// Section encoders. All integers are varints (unsigned unless noted),
// strings are length-prefixed, floats are 8-byte little-endian IEEE 754
// bits. Node attributes are stored column-major: per column, a tag
// array of value kinds followed by the non-null payloads in row order —
// the columnar shape the in-memory engine uses, so a future reader can
// scan one attribute without touching the others.

import (
	"encoding/binary"
	"hash/crc32"
	"math"

	"repro/internal/stats"
	"repro/internal/tgm"
	"repro/internal/value"
)

// enc is an append-only buffer of varint/string/float primitives.
type enc struct {
	buf []byte
}

func (e *enc) u(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) i(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) b(v byte)   { e.buf = append(e.buf, v) }
func (e *enc) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}
func (e *enc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.u(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// edgeTypeOrder enumerates every edge type — forward and reverse alike
// — in per-source out-edge order: for each node type in schema
// insertion order, that type's OutEdges in their insertion order. This
// is the one edge-type ordering the format uses everywhere (SCHM, EDGE,
// STAT), chosen because re-adding edge types in exactly this order
// reproduces each OutEdges list — the order the presentation layer
// derives neighbor columns from.
func edgeTypeOrder(s *tgm.SchemaGraph) []*tgm.EdgeType {
	var out []*tgm.EdgeType
	for _, nt := range s.NodeTypes() {
		out = append(out, s.OutEdges(nt.Name)...)
	}
	return out
}

// encodeMeta writes the cross-check counts: nodes, directed edges, node
// types, edge types.
func encodeMeta(g *tgm.InstanceGraph) []byte {
	e := &enc{}
	e.u(uint64(g.NumNodes()))
	e.u(uint64(g.NumEdges()))
	e.u(uint64(len(g.Schema().NodeTypes())))
	e.u(uint64(len(edgeTypeOrder(g.Schema()))))
	return e.buf
}

// encodeSchema writes the schema graph: node types in insertion order,
// then edge types in edgeTypeOrder.
func encodeSchema(s *tgm.SchemaGraph) []byte {
	e := &enc{}
	nts := s.NodeTypes()
	e.u(uint64(len(nts)))
	for _, nt := range nts {
		e.str(nt.Name)
		e.str(nt.Label)
		e.str(nt.Key)
		e.b(byte(nt.Kind))
		e.str(nt.SourceTable)
		e.u(uint64(len(nt.Attrs)))
		for _, a := range nt.Attrs {
			e.str(a.Name)
			e.b(byte(a.Type))
		}
	}
	ets := edgeTypeOrder(s)
	e.u(uint64(len(ets)))
	for _, et := range ets {
		e.str(et.Name)
		e.str(et.Source)
		e.str(et.Target)
		e.str(et.Label)
		e.b(byte(et.Kind))
		e.str(et.Reverse)
		e.str(et.SourceTable)
	}
	return e.buf
}

// encodeNodeSections writes the two node sections of format version 2:
//
//   - NSKL (skeleton): per node type in schema order, the type's global
//     node IDs (delta-encoded, ascending — insertion order within a
//     type is ID order) followed by a column directory: per attribute,
//     the column payload's offset and length within NCOL and its
//     CRC-32C. The skeleton is everything a lazy open must decode.
//   - NCOL (columns): the concatenated column payloads, one per
//     (type, attribute): a tag array of one kind byte per row, then the
//     non-null payloads in row order. Each payload is independently
//     decodable given its row count (from NSKL), which is what lets the
//     pager fault in one column without touching its neighbors.
//
// Saving an out-of-core graph faults each column through its source,
// so a damaged backing snapshot surfaces here as a typed error.
func encodeNodeSections(g *tgm.InstanceGraph) (nskl, ncol []byte, err error) {
	skel, cols := &enc{}, &enc{}
	for _, nt := range g.Schema().NodeTypes() {
		ids := g.NodesOfType(nt.Name)
		skel.u(uint64(len(ids)))
		prev := uint64(0)
		for i, id := range ids {
			cur := uint64(id)
			if i == 0 {
				skel.u(cur)
			} else {
				skel.u(cur - prev) // ascending: always ≥ 1
			}
			prev = cur
		}
		for ai := range nt.Attrs {
			col, err := g.AttrColumn(nt.Name, ai)
			if err != nil {
				return nil, nil, err
			}
			start := len(cols.buf)
			// Tag array: one kind byte per row.
			for _, v := range col {
				cols.b(byte(v.Kind()))
			}
			// Payloads for the non-null rows, in row order.
			for _, v := range col {
				encodeValuePayload(cols, v)
			}
			payload := cols.buf[start:]
			skel.u(uint64(start))
			skel.u(uint64(len(payload)))
			skel.u(uint64(crc32.Checksum(payload, castagnoli)))
		}
	}
	return skel.buf, cols.buf, nil
}

// encodeValuePayload writes a value's payload (its kind having been
// written in the column's tag array). NULL has no payload.
func encodeValuePayload(e *enc, v value.V) {
	switch v.Kind() {
	case value.KindInt:
		e.i(v.AsInt())
	case value.KindFloat:
		e.f64(v.AsFloat())
	case value.KindString:
		e.str(v.AsString())
	case value.KindBool:
		if v.AsBool() {
			e.b(1)
		} else {
			e.b(0)
		}
	}
}

// encodeEdges writes every edge type's adjacency lists in CSR form:
// ascending sources, an offset array, and the concatenated target
// runs (each source's targets in insertion order — exactly what
// Neighbors must return after a load). The three arrays are
// fixed-width little-endian uint32 so loading is a bulk conversion
// with exact preallocation instead of a varint decode per edge; boot
// latency buys the ~2× byte cost back many times over.
func encodeEdges(g *tgm.InstanceGraph) []byte {
	e := &enc{}
	ets := edgeTypeOrder(g.Schema())
	e.u(uint64(len(ets)))
	for _, et := range ets {
		e.str(et.Name)
		srcs := g.NodesOfType(et.Source)
		withOut, total := 0, 0
		for _, src := range srcs {
			if d := g.Degree(src, et.Name); d > 0 {
				withOut++
				total += d
			}
		}
		e.u(uint64(withOut))
		e.u(uint64(total))
		for _, src := range srcs {
			if g.Degree(src, et.Name) > 0 {
				e.u32(uint32(src))
			}
		}
		off := uint32(0)
		e.u32(0)
		for _, src := range srcs {
			if d := g.Degree(src, et.Name); d > 0 {
				off += uint32(d)
				e.u32(off)
			}
		}
		for _, src := range srcs {
			for _, dst := range g.Neighbors(src, et.Name) {
				e.u32(uint32(dst))
			}
		}
	}
	return e.buf
}

// encodeStats writes the planner statistics: per node type (schema
// order) the instance count and per-attribute NDVs (attribute order
// implied by the type), per edge type (edgeTypeOrder) the degree
// summary and log2 histogram.
func encodeStats(g *tgm.InstanceGraph) []byte {
	st := stats.For(g)
	e := &enc{}
	for _, nt := range g.Schema().NodeTypes() {
		ns := st.Nodes[nt.Name]
		e.u(uint64(ns.Count))
		for _, a := range nt.Attrs {
			e.u(uint64(ns.NDV[a.Name]))
		}
	}
	for _, et := range edgeTypeOrder(g.Schema()) {
		es := st.Edges[et.Name]
		e.u(uint64(es.Count))
		e.u(uint64(es.Sources))
		e.u(uint64(es.SourcesWithOut))
		e.u(uint64(es.MaxOutDegree))
		e.f64(es.Fanout)
		for _, h := range es.Hist {
			e.u(uint64(h))
		}
	}
	return e.buf
}
