package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ReadInfo inspects the snapshot at path without loading it: it reads
// only the fixed header, the section table, and the (few-byte) META
// payload, returning the file size, section list, and node/edge counts.
// The registry uses it so `GET /api/v1/datasets` can describe a
// snapshot-backed dataset before anything pays to load it. Structural
// validation matches Load's (magic, version, table ranges) and META's
// checksum is verified; other payloads are not read.
func ReadInfo(path string) (Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return Info{}, fmt.Errorf("snapshot: opening %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Info{}, fmt.Errorf("snapshot: stat %s: %w", path, err)
	}
	info := Info{Bytes: st.Size()}

	var fixed [headerFixed]byte
	if _, err := io.ReadFull(f, fixed[:]); err != nil {
		return info, ErrBadMagic
	}
	if [8]byte(fixed[:8]) != magic {
		return info, ErrBadMagic
	}
	info.Version = binary.LittleEndian.Uint32(fixed[8:12])
	if info.Version != Version {
		return info, &VersionError{Got: info.Version, Want: Version}
	}
	count := int(binary.LittleEndian.Uint32(fixed[12:16]))
	tableEnd := headerFixed + count*sectionEntrySize
	if count < 0 || count > 64 || int64(tableEnd) > st.Size() {
		return info, corrupt("header", "section table (%d entries) exceeds file size %d", count, st.Size())
	}
	table := make([]byte, count*sectionEntrySize)
	if _, err := io.ReadFull(f, table); err != nil {
		return info, corrupt("header", "truncated section table: %v", err)
	}
	var metaSec SectionInfo
	for i := 0; i < count; i++ {
		e := table[i*sectionEntrySize:]
		s := SectionInfo{
			Tag:    string(e[:4]),
			Offset: binary.LittleEndian.Uint64(e[4:12]),
			Length: binary.LittleEndian.Uint64(e[12:20]),
			CRC32:  binary.LittleEndian.Uint32(e[20:24]),
		}
		if s.Offset < uint64(tableEnd) || s.Offset > uint64(st.Size()) || s.Length > uint64(st.Size())-s.Offset {
			return info, corrupt(s.Tag, "section range [%d,+%d) exceeds file size %d", s.Offset, s.Length, st.Size())
		}
		info.Sections = append(info.Sections, s)
		if s.Tag == secMeta {
			metaSec = s
		}
	}
	if metaSec.Tag == "" {
		return info, corrupt(secMeta, "section missing")
	}
	payload := make([]byte, metaSec.Length)
	if _, err := f.ReadAt(payload, int64(metaSec.Offset)); err != nil {
		return info, corrupt(secMeta, "reading payload: %v", err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != metaSec.CRC32 {
		return info, corrupt(secMeta, "checksum mismatch: stored %08x, computed %08x", metaSec.CRC32, got)
	}
	m, err := decodeMeta(payload)
	if err != nil {
		return info, err
	}
	info.Nodes, info.Edges = m.nodes, m.edges
	return info, nil
}
