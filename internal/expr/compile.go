package expr

import (
	"fmt"

	"repro/internal/tgm"
	"repro/internal/value"
)

// Pred is a selection predicate compiled against one node type: it
// evaluates a condition on a node of that type with WHERE-clause
// truthiness (non-NULL true).
type Pred func(n *tgm.Node) (bool, error)

// evalFn is a compiled sub-expression evaluated against a node, with
// all column names resolved to attribute ordinals at compile time.
// Column reads go through Node.TryAttrAt, so out-of-core column fault
// failures (e.g. snapshot corruption) propagate as errors instead of
// masquerading as NULLs.
type evalFn func(n *tgm.Node) (value.V, error)

// Compile binds e's column references to attribute indices of nt once,
// returning a predicate that evaluates rows without per-row string
// resolution. Names resolve like the interpreted path: the bare name
// first, then the unqualified suffix of a dotted name. Unknown columns
// are reported at compile time rather than on the first row.
func Compile(e Expr, nt *tgm.NodeType) (Pred, error) {
	fn, err := compile(e, nt)
	if err != nil {
		return nil, err
	}
	return func(n *tgm.Node) (bool, error) {
		v, err := fn(n)
		if err != nil {
			return false, err
		}
		return !v.IsNull() && v.AsBool(), nil
	}, nil
}

// resolveAttr mirrors the lookup order of graphrel's node environment.
func resolveAttr(nt *tgm.NodeType, name string) int {
	if i := nt.AttrIndex(name); i >= 0 {
		return i
	}
	for j := len(name) - 1; j >= 0; j-- {
		if name[j] == '.' {
			return nt.AttrIndex(name[j+1:])
		}
	}
	return -1
}

func compile(e Expr, nt *tgm.NodeType) (evalFn, error) {
	switch ex := e.(type) {
	case Const:
		v := ex.Val
		return func(*tgm.Node) (value.V, error) { return v, nil }, nil
	case Col:
		i := resolveAttr(nt, ex.Name)
		if i < 0 {
			return nil, fmt.Errorf("expr: unknown column %q", ex.Name)
		}
		return func(n *tgm.Node) (value.V, error) { return n.TryAttrAt(i) }, nil
	case Cmp:
		l, r, err := compile2(ex.Left, ex.Right, nt)
		if err != nil {
			return nil, err
		}
		op := ex.Op
		return func(n *tgm.Node) (value.V, error) {
			lv, rv, err := eval2(l, r, n)
			if err != nil || lv.IsNull() || rv.IsNull() {
				return value.Null, err
			}
			d := value.Compare(lv, rv)
			var out bool
			switch op {
			case OpEq:
				out = d == 0
			case OpNe:
				out = d != 0
			case OpLt:
				out = d < 0
			case OpLe:
				out = d <= 0
			case OpGt:
				out = d > 0
			case OpGe:
				out = d >= 0
			}
			return value.Bool(out), nil
		}, nil
	case Like:
		l, p, err := compile2(ex.Left, ex.Pattern, nt)
		if err != nil {
			return nil, err
		}
		fold, negate := ex.CaseFold, ex.Negate
		return func(n *tgm.Node) (value.V, error) {
			lv, pv, err := eval2(l, p, n)
			if err != nil || lv.IsNull() || pv.IsNull() {
				return value.Null, err
			}
			ok := MatchLike(lv.AsString(), pv.AsString(), fold)
			if negate {
				ok = !ok
			}
			return value.Bool(ok), nil
		}, nil
	case In:
		l, err := compile(ex.Left, nt)
		if err != nil {
			return nil, err
		}
		list := make([]evalFn, len(ex.List))
		for i, le := range ex.List {
			if list[i], err = compile(le, nt); err != nil {
				return nil, err
			}
		}
		negate := ex.Negate
		return func(n *tgm.Node) (value.V, error) {
			lv, err := l(n)
			if err != nil {
				return value.Null, err
			}
			if lv.IsNull() {
				return value.Null, nil
			}
			found := false
			for _, fe := range list {
				rv, err := fe(n)
				if err != nil {
					return value.Null, err
				}
				if value.Equal(lv, rv) {
					found = true
					break
				}
			}
			if negate {
				found = !found
			}
			return value.Bool(found), nil
		}, nil
	case Between:
		l, err := compile(ex.Left, nt)
		if err != nil {
			return nil, err
		}
		lo, hi, err := compile2(ex.Low, ex.High, nt)
		if err != nil {
			return nil, err
		}
		negate := ex.Negate
		return func(n *tgm.Node) (value.V, error) {
			lv, err := l(n)
			if err != nil {
				return value.Null, err
			}
			lov, hiv, err := eval2(lo, hi, n)
			if err != nil || lv.IsNull() || lov.IsNull() || hiv.IsNull() {
				return value.Null, err
			}
			ok := value.Compare(lv, lov) >= 0 && value.Compare(lv, hiv) <= 0
			if negate {
				ok = !ok
			}
			return value.Bool(ok), nil
		}, nil
	case IsNull:
		l, err := compile(ex.Left, nt)
		if err != nil {
			return nil, err
		}
		negate := ex.Negate
		return func(n *tgm.Node) (value.V, error) {
			lv, err := l(n)
			if err != nil {
				return value.Null, err
			}
			ok := lv.IsNull()
			if negate {
				ok = !ok
			}
			return value.Bool(ok), nil
		}, nil
	case And:
		l, r, err := compile2(ex.Left, ex.Right, nt)
		if err != nil {
			return nil, err
		}
		return func(n *tgm.Node) (value.V, error) {
			lv, err := l(n)
			if err != nil {
				return value.Null, err
			}
			if !lv.IsNull() && !lv.AsBool() {
				return value.Bool(false), nil
			}
			rv, err := r(n)
			if err != nil {
				return value.Null, err
			}
			if !rv.IsNull() && !rv.AsBool() {
				return value.Bool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return value.Null, nil
			}
			return value.Bool(true), nil
		}, nil
	case Or:
		l, r, err := compile2(ex.Left, ex.Right, nt)
		if err != nil {
			return nil, err
		}
		return func(n *tgm.Node) (value.V, error) {
			lv, err := l(n)
			if err != nil {
				return value.Null, err
			}
			if !lv.IsNull() && lv.AsBool() {
				return value.Bool(true), nil
			}
			rv, err := r(n)
			if err != nil {
				return value.Null, err
			}
			if !rv.IsNull() && rv.AsBool() {
				return value.Bool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return value.Null, nil
			}
			return value.Bool(false), nil
		}, nil
	case Not:
		inner, err := compile(ex.Inner, nt)
		if err != nil {
			return nil, err
		}
		return func(n *tgm.Node) (value.V, error) {
			v, err := inner(n)
			if err != nil || v.IsNull() {
				return value.Null, err
			}
			return value.Bool(!v.AsBool()), nil
		}, nil
	case Arith:
		l, r, err := compile2(ex.Left, ex.Right, nt)
		if err != nil {
			return nil, err
		}
		op := ex.Op
		return func(n *tgm.Node) (value.V, error) {
			lv, rv, err := eval2(l, r, n)
			if err != nil {
				return value.Null, err
			}
			return arithApply(op, lv, rv)
		}, nil
	default:
		// Unknown expression types fall back to the interpreted path
		// through a node-backed environment.
		return func(n *tgm.Node) (value.V, error) {
			return e.Eval(nodeFallbackEnv{nt: nt, n: n})
		}, nil
	}
}

func compile2(a, b Expr, nt *tgm.NodeType) (evalFn, evalFn, error) {
	fa, err := compile(a, nt)
	if err != nil {
		return nil, nil, err
	}
	fb, err := compile(b, nt)
	if err != nil {
		return nil, nil, err
	}
	return fa, fb, nil
}

func eval2(a, b evalFn, n *tgm.Node) (value.V, value.V, error) {
	av, err := a(n)
	if err != nil {
		return value.Null, value.Null, err
	}
	bv, err := b(n)
	if err != nil {
		return value.Null, value.Null, err
	}
	return av, bv, nil
}

// nodeFallbackEnv adapts a node to Env for the interpreted fallback.
// Env.Lookup cannot return an error, so a column fault failure on an
// out-of-core graph surfaces here as NULL; the compiled leaves above —
// which every planner-built predicate uses — propagate it instead.
type nodeFallbackEnv struct {
	nt *tgm.NodeType
	n  *tgm.Node
}

// Lookup implements Env.
func (e nodeFallbackEnv) Lookup(name string) (value.V, bool) {
	if i := resolveAttr(e.nt, name); i >= 0 {
		return e.n.AttrAt(i), true
	}
	return value.Null, false
}
