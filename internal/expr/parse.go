package expr

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// Parse parses a condition string such as
//
//	acronym = 'SIGMOD' AND year > 2005 AND country LIKE '%Korea%'
//
// into an expression tree. The grammar (precedence low→high):
//
//	or     := and { OR and }
//	and    := not { AND not }
//	not    := NOT not | pred
//	pred   := sum [ cmpop sum | [NOT] LIKE sum | [NOT] ILIKE sum
//	               | [NOT] IN '(' sum {',' sum} ')'
//	               | [NOT] BETWEEN sum AND sum | IS [NOT] NULL ]
//	sum    := term { (+|-) term }
//	term   := factor { (*|/|%) factor }
//	factor := literal | column | '(' or ')' | - factor
func Parse(src string) (Expr, error) {
	p := &parser{lex: NewLexer(src)}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if err := p.lex.Err(); err != nil {
		return nil, err
	}
	if t := p.lex.Tok(); t.Kind != TokEOF {
		return nil, fmt.Errorf("expr: unexpected trailing input %q at offset %d", t.Text, t.Pos)
	}
	return e, nil
}

// MustParse is Parse that panics on error, for tests and fixed program
// constants.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// ParseWith parses one expression starting at the lexer's current token,
// leaving the lexer positioned at the first token past the expression.
// It is the embedding point for the SQL subset parser, which owns the
// surrounding statement grammar.
func ParseWith(l *Lexer) (Expr, error) {
	p := &parser{lex: l}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if err := l.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

// ParseOperandWith parses a single additive expression (sums/products of
// literals and columns — no comparisons or boolean connectives) starting
// at the lexer's current token. The SQL parser uses it for the operands
// of HAVING comparisons, where a full boolean parse would greedily
// swallow the surrounding AND/OR structure.
func ParseOperandWith(l *Lexer) (Expr, error) {
	p := &parser{lex: l}
	e, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if err := l.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

type parser struct {
	lex *Lexer
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("expr: %s (near offset %d)", fmt.Sprintf(format, args...), p.lex.Tok().Pos)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.lex.Tok().IsKeyword(kw) {
		p.lex.Next()
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	t := p.lex.Tok()
	if t.Kind == TokOp && t.Text == op {
		p.lex.Next()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %q", op, p.lex.Tok().Text)
	}
	return nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.lex.Tok().IsKeyword("AND") {
		p.lex.Next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = And{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not{Inner: inner}, nil
	}
	return p.parsePred()
}

func (p *parser) parsePred() (Expr, error) {
	left, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	t := p.lex.Tok()
	if t.Kind == TokOp {
		var op CmpOp
		switch t.Text {
		case "=":
			op = OpEq
		case "<>", "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			return left, nil
		}
		p.lex.Next()
		right, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		return Cmp{Op: op, Left: left, Right: right}, nil
	}
	negate := false
	if t.IsKeyword("NOT") {
		negate = true
		p.lex.Next()
		t = p.lex.Tok()
	}
	switch {
	case t.IsKeyword("LIKE"), t.IsKeyword("ILIKE"):
		fold := t.IsKeyword("ILIKE")
		p.lex.Next()
		pat, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		return Like{Left: left, Pattern: pat, CaseFold: fold, Negate: negate}, nil
	case t.IsKeyword("IN"):
		p.lex.Next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return In{Left: left, List: list, Negate: negate}, nil
	case t.IsKeyword("BETWEEN"):
		p.lex.Next()
		lo, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		if !p.acceptKeyword("AND") {
			return nil, p.errf("expected AND in BETWEEN")
		}
		hi, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		return Between{Left: left, Low: lo, High: hi, Negate: negate}, nil
	case t.IsKeyword("IS"):
		if negate {
			return nil, p.errf("NOT before IS is not supported; use IS NOT NULL")
		}
		p.lex.Next()
		neg := p.acceptKeyword("NOT")
		if !p.acceptKeyword("NULL") {
			return nil, p.errf("expected NULL after IS")
		}
		return IsNull{Left: left, Negate: neg}, nil
	}
	if negate {
		return nil, p.errf("expected LIKE, IN, or BETWEEN after NOT")
	}
	return left, nil
}

func (p *parser) parseSum() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.lex.Tok()
		if t.Kind != TokOp || t.Text != "+" && t.Text != "-" {
			return left, nil
		}
		op := OpAdd
		if t.Text == "-" {
			op = OpSub
		}
		p.lex.Next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = Arith{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.lex.Tok()
		if t.Kind != TokOp {
			return left, nil
		}
		var op ArithOp
		switch t.Text {
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		case "%":
			op = OpMod
		default:
			return left, nil
		}
		p.lex.Next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = Arith{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	t := p.lex.Tok()
	switch {
	case t.Kind == TokNumber:
		p.lex.Next()
		if strings.ContainsRune(t.Text, '.') {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return Const{Val: value.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.Text)
		}
		return Const{Val: value.Int(i)}, nil
	case t.Kind == TokString:
		p.lex.Next()
		return Const{Val: value.Str(t.Text)}, nil
	case t.Kind == TokOp && t.Text == "(":
		p.lex.Next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokOp && t.Text == "-":
		p.lex.Next()
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Arith{Op: OpSub, Left: Const{Val: value.Int(0)}, Right: inner}, nil
	case t.IsKeyword("TRUE"):
		p.lex.Next()
		return Const{Val: value.Bool(true)}, nil
	case t.IsKeyword("FALSE"):
		p.lex.Next()
		return Const{Val: value.Bool(false)}, nil
	case t.IsKeyword("NULL"):
		p.lex.Next()
		return Const{Val: value.Null}, nil
	case t.Kind == TokIdent:
		p.lex.Next()
		return Col{Name: t.Text}, nil
	default:
		return nil, p.errf("unexpected token %q", t.Text)
	}
}
