package expr

import "strings"

// MatchLike reports whether s matches the SQL LIKE pattern. '%' matches
// any run of characters (including empty), '_' matches exactly one
// character, and a backslash escapes the next pattern character. When
// fold is true, matching is case-insensitive (ILIKE).
func MatchLike(s, pattern string, fold bool) bool {
	if fold {
		s = strings.ToLower(s)
		pattern = strings.ToLower(pattern)
	}
	return likeMatch(s, pattern)
}

// likeMatch implements iterative wildcard matching with backtracking on
// the most recent '%'. Operating on bytes is correct for '%' and escape
// handling; '_' consumes one byte, which matches one character for ASCII
// data (the dataset used here).
func likeMatch(s, p string) bool {
	var si, pi int
	star, match := -1, 0
	for si < len(s) {
		if pi < len(p) {
			switch c := p[pi]; c {
			case '%':
				star, match = pi, si
				pi++
				continue
			case '_':
				si++
				pi++
				continue
			case '\\':
				if pi+1 < len(p) && p[pi+1] == s[si] {
					si++
					pi += 2
					continue
				}
			default:
				if c == s[si] {
					si++
					pi++
					continue
				}
			}
		}
		if star >= 0 {
			// Backtrack: let the last '%' absorb one more byte.
			match++
			si = match
			pi = star + 1
			continue
		}
		return false
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
