package expr

import (
	"testing"

	"repro/internal/tgm"
	"repro/internal/value"
)

func compileFixture(t testing.TB) (*tgm.NodeType, *tgm.Node, *tgm.Node) {
	t.Helper()
	s := tgm.NewSchemaGraph()
	nt, err := s.AddNodeType(tgm.NodeType{Name: "Papers", Label: "title",
		Attrs: []tgm.Attr{
			{Name: "id", Type: value.KindInt},
			{Name: "title", Type: value.KindString},
			{Name: "year", Type: value.KindInt},
			{Name: "score", Type: value.KindFloat},
		}})
	if err != nil {
		t.Fatal(err)
	}
	g := tgm.NewInstanceGraph(s)
	id1, err := g.AddNode("Papers", []value.V{
		value.Int(1), value.Str("usable databases"), value.Int(2007), value.Float(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := g.AddNode("Papers", []value.V{
		value.Int(2), value.Str("SkewTune"), value.Null, value.Null})
	if err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	return nt, g.Node(id1), g.Node(id2)
}

// TestCompileParityWithEval asserts the compiled predicate agrees with
// the interpreted Truthy path across the operator surface, including
// three-valued logic over NULL attributes.
func TestCompileParityWithEval(t *testing.T) {
	nt, n1, n2 := compileFixture(t)
	conds := []string{
		"year > 2005",
		"Papers.year > 2005",
		"year = 2007 AND title like '%data%'",
		"year = 2007 OR title like 'Skew%'",
		"NOT (year < 2000)",
		"title ilike '%USABLE%'",
		"title not like 'x%'",
		"year in (2007, 2012)",
		"year not in (1999)",
		"year between 2000 and 2010",
		"year not between 2000 and 2010",
		"year is null",
		"year is not null",
		"year + 1 = 2008",
		"year % 2 = 1",
		"score * 2 = 1",
		"year > 2005 AND score is null",
	}
	for _, src := range conds {
		e := MustParse(src)
		pred, err := Compile(e, nt)
		if err != nil {
			t.Fatalf("%s: compile: %v", src, err)
		}
		for _, n := range []*tgm.Node{n1, n2} {
			want, werr := Truthy(e, mapEnvFor(n))
			got, gerr := pred(n)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s on node %d: err %v vs %v", src, n.ID, werr, gerr)
			}
			if want != got {
				t.Errorf("%s on node %d: compiled %v, interpreted %v", src, n.ID, got, want)
			}
		}
	}
}

// mapEnvFor mirrors the interpreted lookup used before compilation.
func mapEnvFor(n *tgm.Node) Env {
	m := MapEnv{}
	for i, a := range n.Type.Attrs {
		m[a.Name] = n.AttrAt(i)
	}
	return m
}

func TestCompileUnknownColumn(t *testing.T) {
	nt, _, _ := compileFixture(t)
	if _, err := Compile(MustParse("nope = 1"), nt); err == nil {
		t.Error("unknown column compiled")
	}
	if _, err := Compile(MustParse("year in (1, nope)"), nt); err == nil {
		t.Error("unknown column in IN list compiled")
	}
	// Qualified names resolve through the dotted-suffix fallback.
	if _, err := Compile(MustParse("Whatever.year = 2007"), nt); err != nil {
		t.Errorf("dotted fallback: %v", err)
	}
}

// stubExpr is an expression type Compile does not know, forcing the
// interpreted fallback.
type stubExpr struct{}

func (stubExpr) Eval(env Env) (value.V, error) {
	v, _ := env.Lookup("year")
	return Cmp{Op: OpGt, Left: Const{Val: v}, Right: Const{Val: value.Int(2005)}}.Eval(env)
}
func (stubExpr) String() string                { return "stub" }
func (stubExpr) Columns(dst []string) []string { return append(dst, "year") }

func TestCompileFallback(t *testing.T) {
	nt, n1, n2 := compileFixture(t)
	pred, err := Compile(stubExpr{}, nt)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := pred(n1); err != nil || !ok {
		t.Errorf("fallback on n1 = %v, %v", ok, err)
	}
	if ok, err := pred(n2); err != nil || ok {
		t.Errorf("fallback on n2 = %v, %v (NULL year must be false)", ok, err)
	}
}
