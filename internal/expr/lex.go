package expr

import (
	"fmt"
	"strings"
)

// TokKind classifies lexer tokens. The lexer here is shared with the SQL
// subset parser in internal/sqlparse.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokOp
)

// Token is a lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Pos  int
}

// IsKeyword reports whether the token is an identifier equal to kw,
// case-insensitively.
func (t Token) IsKeyword(kw string) bool {
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

// Lexer tokenizes condition and SQL text.
type Lexer struct {
	src string
	pos int
	tok Token
	err error
}

// NewLexer returns a lexer over src, positioned at the first token.
func NewLexer(src string) *Lexer {
	l := &Lexer{src: src}
	l.Next()
	return l
}

// Err returns the first lexical error encountered, if any.
func (l *Lexer) Err() error { return l.err }

// Tok returns the current token.
func (l *Lexer) Tok() Token { return l.tok }

// Next advances to the next token and returns it.
func (l *Lexer) Next() Token {
	l.tok = l.scan()
	return l.tok
}

func (l *Lexer) setErr(pos int, format string, args ...any) {
	if l.err == nil {
		l.err = fmt.Errorf("lex: %s at offset %d", fmt.Sprintf(format, args...), pos)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) scan() Token {
	src := l.src
	for l.pos < len(src) && (src[l.pos] == ' ' || src[l.pos] == '\t' ||
		src[l.pos] == '\n' || src[l.pos] == '\r') {
		l.pos++
	}
	if l.pos >= len(src) {
		return Token{Kind: TokEOF, Pos: l.pos}
	}
	start := l.pos
	c := src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(src) && (isIdentPart(src[l.pos]) || src[l.pos] == '.') {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: src[start:l.pos], Pos: start}
	case isDigit(c) || c == '.' && l.pos+1 < len(src) && isDigit(src[l.pos+1]):
		seenDot := false
		for l.pos < len(src) && (isDigit(src[l.pos]) || src[l.pos] == '.' && !seenDot) {
			if src[l.pos] == '.' {
				seenDot = true
			}
			l.pos++
		}
		return Token{Kind: TokNumber, Text: src[start:l.pos], Pos: start}
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(src) {
				l.setErr(start, "unterminated string literal")
				return Token{Kind: TokEOF, Pos: l.pos}
			}
			if src[l.pos] == '\'' {
				if l.pos+1 < len(src) && src[l.pos+1] == '\'' {
					b.WriteByte('\'') // doubled quote escape
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(src[l.pos])
			l.pos++
		}
		return Token{Kind: TokString, Text: b.String(), Pos: start}
	case c == '"':
		// Double-quoted identifier.
		l.pos++
		var b strings.Builder
		for l.pos < len(src) && src[l.pos] != '"' {
			b.WriteByte(src[l.pos])
			l.pos++
		}
		if l.pos >= len(src) {
			l.setErr(start, "unterminated quoted identifier")
			return Token{Kind: TokEOF, Pos: l.pos}
		}
		l.pos++
		return Token{Kind: TokIdent, Text: b.String(), Pos: start}
	default:
		two := ""
		if l.pos+1 < len(src) {
			two = src[l.pos : l.pos+2]
		}
		switch two {
		case "<=", ">=", "<>", "!=", "||":
			l.pos += 2
			return Token{Kind: TokOp, Text: two, Pos: start}
		}
		switch c {
		case '=', '<', '>', '(', ')', ',', '+', '-', '*', '/', '%', ';':
			l.pos++
			return Token{Kind: TokOp, Text: string(c), Pos: start}
		}
		l.setErr(start, "unexpected character %q", string(c))
		l.pos++
		return Token{Kind: TokEOF, Pos: start}
	}
}
