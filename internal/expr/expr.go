// Package expr implements the condition language used for selection
// conditions throughout the system: in the relational engine's WHERE
// evaluation, in the ETable query pattern's per-node-type conditions
// (the C component of Q(τa, T, P, C) in the paper's Definition 3), and
// in the SQL subset parser.
//
// An expression evaluates against an Env, which resolves column names to
// values. Expressions support comparisons, SQL LIKE/ILIKE patterns,
// IN lists, BETWEEN, IS [NOT] NULL, boolean connectives, and the four
// arithmetic operators.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Env resolves a (possibly qualified) column name to a value. The second
// return reports whether the name is known.
type Env interface {
	Lookup(name string) (value.V, bool)
}

// MapEnv is an Env backed by a map. Lookup falls back to the unqualified
// suffix of a dotted name.
type MapEnv map[string]value.V

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (value.V, bool) {
	if v, ok := m[name]; ok {
		return v, true
	}
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		if v, ok := m[name[i+1:]]; ok {
			return v, true
		}
	}
	return value.Null, false
}

// Expr is a node in the expression tree.
type Expr interface {
	// Eval computes the expression's value in env.
	Eval(env Env) (value.V, error)
	// String renders the expression in SQL-like syntax.
	String() string
	// Columns appends the column names referenced by the expression.
	Columns(dst []string) []string
}

// Const is a literal value.
type Const struct{ Val value.V }

// Eval implements Expr.
func (c Const) Eval(Env) (value.V, error) { return c.Val, nil }

// String implements Expr.
func (c Const) String() string { return c.Val.SQL() }

// Columns implements Expr.
func (c Const) Columns(dst []string) []string { return dst }

// Col references a column by name ("year" or "Papers.year").
type Col struct{ Name string }

// Eval implements Expr.
func (c Col) Eval(env Env) (value.V, error) {
	v, ok := env.Lookup(c.Name)
	if !ok {
		return value.Null, fmt.Errorf("expr: unknown column %q", c.Name)
	}
	return v, nil
}

// String implements Expr.
func (c Col) String() string { return c.Name }

// Columns implements Expr.
func (c Col) Columns(dst []string) []string { return append(dst, c.Name) }

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Cmp compares two sub-expressions. Comparisons involving NULL yield
// NULL (three-valued logic), which callers treat as false.
type Cmp struct {
	Op          CmpOp
	Left, Right Expr
}

// Eval implements Expr.
func (c Cmp) Eval(env Env) (value.V, error) {
	l, err := c.Left.Eval(env)
	if err != nil {
		return value.Null, err
	}
	r, err := c.Right.Eval(env)
	if err != nil {
		return value.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	d := value.Compare(l, r)
	var out bool
	switch c.Op {
	case OpEq:
		out = d == 0
	case OpNe:
		out = d != 0
	case OpLt:
		out = d < 0
	case OpLe:
		out = d <= 0
	case OpGt:
		out = d > 0
	case OpGe:
		out = d >= 0
	}
	return value.Bool(out), nil
}

// String implements Expr.
func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// Columns implements Expr.
func (c Cmp) Columns(dst []string) []string {
	return c.Right.Columns(c.Left.Columns(dst))
}

// Like matches Left against a SQL LIKE pattern. CaseFold selects
// ILIKE-style case-insensitive matching. Negate inverts the result.
type Like struct {
	Left     Expr
	Pattern  Expr
	CaseFold bool
	Negate   bool
}

// Eval implements Expr.
func (l Like) Eval(env Env) (value.V, error) {
	lv, err := l.Left.Eval(env)
	if err != nil {
		return value.Null, err
	}
	pv, err := l.Pattern.Eval(env)
	if err != nil {
		return value.Null, err
	}
	if lv.IsNull() || pv.IsNull() {
		return value.Null, nil
	}
	ok := MatchLike(lv.AsString(), pv.AsString(), l.CaseFold)
	if l.Negate {
		ok = !ok
	}
	return value.Bool(ok), nil
}

// String implements Expr.
func (l Like) String() string {
	op := "LIKE"
	if l.CaseFold {
		op = "ILIKE"
	}
	if l.Negate {
		op = "NOT " + op
	}
	return fmt.Sprintf("%s %s %s", l.Left, op, l.Pattern)
}

// Columns implements Expr.
func (l Like) Columns(dst []string) []string {
	return l.Pattern.Columns(l.Left.Columns(dst))
}

// In tests membership of Left in a literal list.
type In struct {
	Left   Expr
	List   []Expr
	Negate bool
}

// Eval implements Expr.
func (in In) Eval(env Env) (value.V, error) {
	lv, err := in.Left.Eval(env)
	if err != nil {
		return value.Null, err
	}
	if lv.IsNull() {
		return value.Null, nil
	}
	found := false
	for _, e := range in.List {
		rv, err := e.Eval(env)
		if err != nil {
			return value.Null, err
		}
		if value.Equal(lv, rv) {
			found = true
			break
		}
	}
	if in.Negate {
		found = !found
	}
	return value.Bool(found), nil
}

// String implements Expr.
func (in In) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	op := "IN"
	if in.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("%s %s (%s)", in.Left, op, strings.Join(parts, ", "))
}

// Columns implements Expr.
func (in In) Columns(dst []string) []string {
	dst = in.Left.Columns(dst)
	for _, e := range in.List {
		dst = e.Columns(dst)
	}
	return dst
}

// Between tests Low <= Left <= High.
type Between struct {
	Left, Low, High Expr
	Negate          bool
}

// Eval implements Expr.
func (b Between) Eval(env Env) (value.V, error) {
	lv, err := b.Left.Eval(env)
	if err != nil {
		return value.Null, err
	}
	lo, err := b.Low.Eval(env)
	if err != nil {
		return value.Null, err
	}
	hi, err := b.High.Eval(env)
	if err != nil {
		return value.Null, err
	}
	if lv.IsNull() || lo.IsNull() || hi.IsNull() {
		return value.Null, nil
	}
	ok := value.Compare(lv, lo) >= 0 && value.Compare(lv, hi) <= 0
	if b.Negate {
		ok = !ok
	}
	return value.Bool(ok), nil
}

// String implements Expr.
func (b Between) String() string {
	op := "BETWEEN"
	if b.Negate {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("%s %s %s AND %s", b.Left, op, b.Low, b.High)
}

// Columns implements Expr.
func (b Between) Columns(dst []string) []string {
	return b.High.Columns(b.Low.Columns(b.Left.Columns(dst)))
}

// IsNull tests Left for NULL-ness.
type IsNull struct {
	Left   Expr
	Negate bool
}

// Eval implements Expr.
func (n IsNull) Eval(env Env) (value.V, error) {
	lv, err := n.Left.Eval(env)
	if err != nil {
		return value.Null, err
	}
	ok := lv.IsNull()
	if n.Negate {
		ok = !ok
	}
	return value.Bool(ok), nil
}

// String implements Expr.
func (n IsNull) String() string {
	if n.Negate {
		return fmt.Sprintf("%s IS NOT NULL", n.Left)
	}
	return fmt.Sprintf("%s IS NULL", n.Left)
}

// Columns implements Expr.
func (n IsNull) Columns(dst []string) []string { return n.Left.Columns(dst) }

// And is logical conjunction with SQL three-valued semantics.
type And struct{ Left, Right Expr }

// Eval implements Expr.
func (a And) Eval(env Env) (value.V, error) {
	l, err := a.Left.Eval(env)
	if err != nil {
		return value.Null, err
	}
	if !l.IsNull() && !l.AsBool() {
		return value.Bool(false), nil
	}
	r, err := a.Right.Eval(env)
	if err != nil {
		return value.Null, err
	}
	if !r.IsNull() && !r.AsBool() {
		return value.Bool(false), nil
	}
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	return value.Bool(true), nil
}

// String implements Expr.
func (a And) String() string { return fmt.Sprintf("(%s AND %s)", a.Left, a.Right) }

// Columns implements Expr.
func (a And) Columns(dst []string) []string {
	return a.Right.Columns(a.Left.Columns(dst))
}

// Or is logical disjunction with SQL three-valued semantics.
type Or struct{ Left, Right Expr }

// Eval implements Expr.
func (o Or) Eval(env Env) (value.V, error) {
	l, err := o.Left.Eval(env)
	if err != nil {
		return value.Null, err
	}
	if !l.IsNull() && l.AsBool() {
		return value.Bool(true), nil
	}
	r, err := o.Right.Eval(env)
	if err != nil {
		return value.Null, err
	}
	if !r.IsNull() && r.AsBool() {
		return value.Bool(true), nil
	}
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	return value.Bool(false), nil
}

// String implements Expr.
func (o Or) String() string { return fmt.Sprintf("(%s OR %s)", o.Left, o.Right) }

// Columns implements Expr.
func (o Or) Columns(dst []string) []string {
	return o.Right.Columns(o.Left.Columns(dst))
}

// Not is logical negation.
type Not struct{ Inner Expr }

// Eval implements Expr.
func (n Not) Eval(env Env) (value.V, error) {
	v, err := n.Inner.Eval(env)
	if err != nil {
		return value.Null, err
	}
	if v.IsNull() {
		return value.Null, nil
	}
	return value.Bool(!v.AsBool()), nil
}

// String implements Expr.
func (n Not) String() string { return fmt.Sprintf("NOT (%s)", n.Inner) }

// Columns implements Expr.
func (n Not) Columns(dst []string) []string { return n.Inner.Columns(dst) }

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

// String returns the operator's spelling.
func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	default:
		return "?"
	}
}

// Arith applies an arithmetic operator. Integer operands use integer
// arithmetic; mixed or float operands use floats. Division by zero and
// NULL operands yield NULL.
type Arith struct {
	Op          ArithOp
	Left, Right Expr
}

// Eval implements Expr.
func (a Arith) Eval(env Env) (value.V, error) {
	l, err := a.Left.Eval(env)
	if err != nil {
		return value.Null, err
	}
	r, err := a.Right.Eval(env)
	if err != nil {
		return value.Null, err
	}
	return arithApply(a.Op, l, r)
}

// arithApply evaluates one arithmetic operation on computed operands; it
// is shared by the interpreted and compiled paths.
func arithApply(op ArithOp, l, r value.V) (value.V, error) {
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	if l.Kind() == value.KindInt && r.Kind() == value.KindInt {
		x, y := l.AsInt(), r.AsInt()
		switch op {
		case OpAdd:
			return value.Int(x + y), nil
		case OpSub:
			return value.Int(x - y), nil
		case OpMul:
			return value.Int(x * y), nil
		case OpDiv:
			if y == 0 {
				return value.Null, nil
			}
			return value.Int(x / y), nil
		case OpMod:
			if y == 0 {
				return value.Null, nil
			}
			return value.Int(x % y), nil
		}
	}
	x, y := l.AsFloat(), r.AsFloat()
	switch op {
	case OpAdd:
		return value.Float(x + y), nil
	case OpSub:
		return value.Float(x - y), nil
	case OpMul:
		return value.Float(x * y), nil
	case OpDiv:
		if y == 0 {
			return value.Null, nil
		}
		return value.Float(x / y), nil
	case OpMod:
		if y == 0 {
			return value.Null, nil
		}
		return value.Float(float64(int64(x) % int64(y))), nil
	}
	return value.Null, fmt.Errorf("expr: bad arithmetic operator %v", op)
}

// String implements Expr.
func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.Left, a.Op, a.Right)
}

// Columns implements Expr.
func (a Arith) Columns(dst []string) []string {
	return a.Right.Columns(a.Left.Columns(dst))
}

// Truthy evaluates e and reports whether the result is a non-NULL true
// value. This is the standard WHERE-clause interpretation.
func Truthy(e Expr, env Env) (bool, error) {
	v, err := e.Eval(env)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.AsBool(), nil
}

// Conjoin combines expressions with AND, returning nil for an empty list.
func Conjoin(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = And{Left: out, Right: e}
		}
	}
	return out
}
