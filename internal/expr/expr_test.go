package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func env(pairs ...any) MapEnv {
	m := MapEnv{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(value.V)
	}
	return m
}

func evalBool(t *testing.T, src string, e Env) bool {
	t.Helper()
	ex, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	ok, err := Truthy(ex, e)
	if err != nil {
		t.Fatalf("Truthy(%q): %v", src, err)
	}
	return ok
}

func TestComparisons(t *testing.T) {
	e := env("year", value.Int(2007), "title", value.Str("Making database systems usable"))
	cases := []struct {
		src  string
		want bool
	}{
		{"year = 2007", true},
		{"year <> 2007", false},
		{"year != 2008", true},
		{"year > 2005", true},
		{"year >= 2007", true},
		{"year < 2007", false},
		{"year <= 2006", false},
		{"title = 'Making database systems usable'", true},
		{"title < 'Z'", true},
	}
	for _, c := range cases {
		if got := evalBool(t, c.src, e); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"user interface", "%user%", true},
		{"USER interface", "%user%", false},
		{"Seoul National Univ.", "%Korea%", false},
		{"South Korea", "%Korea%", true},
		{"Korea", "Korea", true},
		{"Koreas", "Korea", false},
		{"abc", "a_c", true},
		{"abbc", "a_c", false},
		{"", "%", true},
		{"", "_", false},
		{"anything", "%", true},
		{"a%b", "a\\%b", true},
		{"axb", "a\\%b", false},
		{"mississippi", "%iss%ippi", true},
		{"hello world", "hello%world", true},
		{"hello", "%%%", true},
		{"ab", "a%b%c", false},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.p, false); got != c.want {
			t.Errorf("MatchLike(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
	if !MatchLike("SIGMOD", "%sigmod%", true) {
		t.Error("ILIKE should fold case")
	}
}

func TestLikeExpr(t *testing.T) {
	e := env("country", value.Str("South Korea"), "kw", value.Str("user interface"))
	if !evalBool(t, "country like '%Korea%'", e) {
		t.Error("country like %Korea% should hold")
	}
	if evalBool(t, "country not like '%Korea%'", e) {
		t.Error("NOT LIKE should invert")
	}
	if !evalBool(t, "kw ilike '%USER%'", e) {
		t.Error("ILIKE should fold case")
	}
}

func TestInBetweenIsNull(t *testing.T) {
	e := env("year", value.Int(2010), "x", value.Null)
	if !evalBool(t, "year in (2009, 2010, 2011)", e) {
		t.Error("IN should match")
	}
	if evalBool(t, "year not in (2009, 2010)", e) {
		t.Error("NOT IN should miss")
	}
	if !evalBool(t, "year between 2005 and 2015", e) {
		t.Error("BETWEEN should match")
	}
	if evalBool(t, "year not between 2005 and 2015", e) {
		t.Error("NOT BETWEEN should miss")
	}
	if !evalBool(t, "x is null", e) {
		t.Error("IS NULL")
	}
	if evalBool(t, "x is not null", e) {
		t.Error("IS NOT NULL")
	}
	if !evalBool(t, "year is not null", e) {
		t.Error("year IS NOT NULL")
	}
}

func TestBooleanConnectives(t *testing.T) {
	e := env("a", value.Int(1), "b", value.Int(0))
	cases := []struct {
		src  string
		want bool
	}{
		{"a = 1 AND b = 0", true},
		{"a = 1 AND b = 1", false},
		{"a = 0 OR b = 0", true},
		{"a = 0 OR b = 1", false},
		{"NOT a = 0", true},
		{"NOT (a = 1 AND b = 0)", false},
		{"a = 1 OR a = 0 AND b = 1", true}, // AND binds tighter
	}
	for _, c := range cases {
		if got := evalBool(t, c.src, e); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	e := env("x", value.Null, "a", value.Int(1))
	// NULL comparisons are never truthy.
	if evalBool(t, "x = 0", e) || evalBool(t, "x <> 0", e) {
		t.Error("NULL comparisons should not be truthy")
	}
	// FALSE AND NULL = FALSE; TRUE OR NULL = TRUE.
	if evalBool(t, "a = 0 AND x = 0", e) {
		t.Error("FALSE AND NULL should be false")
	}
	if !evalBool(t, "a = 1 OR x = 0", e) {
		t.Error("TRUE OR NULL should be true")
	}
	// NOT NULL is NULL (not truthy).
	if evalBool(t, "NOT x = 0", e) {
		t.Error("NOT NULL should not be truthy")
	}
}

func TestArithmetic(t *testing.T) {
	e := env("ps", value.Int(13), "pe", value.Int(24), "f", value.Float(1.5))
	cases := []struct {
		src  string
		want value.V
	}{
		{"pe - ps", value.Int(11)},
		{"ps + pe", value.Int(37)},
		{"2 * 3 + 1", value.Int(7)},
		{"1 + 2 * 3", value.Int(7)},
		{"7 / 2", value.Int(3)},
		{"7 % 2", value.Int(1)},
		{"f * 2", value.Float(3)},
		{"-ps", value.Int(-13)},
		{"7 / 0", value.Null},
		{"(1 + 2) * 3", value.Int(9)},
	}
	for _, c := range cases {
		ex, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		got, err := ex.Eval(e)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if got.IsNull() != c.want.IsNull() || !c.want.IsNull() && !value.Equal(got, c.want) {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"year >",
		"year = 'unterminated",
		"(year = 1",
		"year in 2009",
		"year between 1 or 2",
		"= 5",
		"year = 2005 extra stuff",
		"a like",
		"x is 5",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestUnknownColumn(t *testing.T) {
	ex := MustParse("nope = 1")
	if _, err := ex.Eval(MapEnv{}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestQualifiedLookup(t *testing.T) {
	e := env("year", value.Int(2007))
	if !evalBool(t, "Papers.year = 2007", e) {
		t.Error("qualified name should fall back to unqualified column")
	}
}

func TestColumns(t *testing.T) {
	ex := MustParse("a = 1 AND b LIKE '%x%' OR c + d > 2")
	got := ex.Columns(nil)
	want := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	if len(got) != 4 {
		t.Fatalf("Columns = %v", got)
	}
	for _, c := range got {
		if !want[c] {
			t.Errorf("unexpected column %q", c)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"acronym = 'SIGMOD' AND year > 2005",
		"country LIKE '%Korea%'",
		"x IN (1, 2, 3)",
		"y BETWEEN 1 AND 2",
		"z IS NOT NULL",
		"NOT (a = 1 OR b = 2)",
	}
	for _, src := range srcs {
		ex := MustParse(src)
		re, err := Parse(ex.String())
		if err != nil {
			t.Fatalf("re-Parse(%q → %q): %v", src, ex.String(), err)
		}
		if re.String() != ex.String() {
			t.Errorf("String round-trip unstable: %q → %q → %q", src, ex.String(), re.String())
		}
	}
}

func TestConjoin(t *testing.T) {
	if Conjoin() != nil {
		t.Error("empty Conjoin should be nil")
	}
	a, b := MustParse("x = 1"), MustParse("y = 2")
	if got := Conjoin(a, nil, b).String(); got != "(x = 1 AND y = 2)" {
		t.Errorf("Conjoin = %q", got)
	}
	if got := Conjoin(nil, a); got.String() != "x = 1" {
		t.Errorf("single Conjoin = %q", got.String())
	}
}

// Property: LIKE with pattern "%s%" finds s as substring.
func TestLikeSubstringProperty(t *testing.T) {
	f := func(hay, needle string) bool {
		if strings.ContainsAny(needle, `%_\`) || strings.ContainsAny(hay, `%_\`) {
			return true
		}
		return MatchLike(hay, "%"+needle+"%", false) == strings.Contains(hay, needle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: a literal pattern (no metacharacters) matches only itself.
func TestLikeLiteralProperty(t *testing.T) {
	f := func(a, b string) bool {
		if strings.ContainsAny(a, `%_\`) || strings.ContainsAny(b, `%_\`) {
			return true
		}
		return MatchLike(a, b, false) == (a == b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: parsed integer comparisons agree with direct Go comparison.
func TestCmpProperty(t *testing.T) {
	f := func(a, b int32) bool {
		e := env("a", value.Int(int64(a)), "b", value.Int(int64(b)))
		return evalBoolQuiet("a < b", e) == (a < b) &&
			evalBoolQuiet("a = b", e) == (a == b) &&
			evalBoolQuiet("a >= b", e) == (a >= b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func evalBoolQuiet(src string, e Env) bool {
	ex, err := Parse(src)
	if err != nil {
		return false
	}
	ok, err := Truthy(ex, e)
	return err == nil && ok
}
