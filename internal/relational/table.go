package relational

import (
	"fmt"

	"repro/internal/value"
)

// Row is one tuple of a table or result relation. Positions correspond to
// the owning schema's columns.
type Row []value.V

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is a base relation: a schema plus its rows and indexes. Tables
// are not safe for concurrent mutation; the DB serializes writers.
type Table struct {
	schema  Schema
	rows    []Row
	pkIndex map[string]int              // composite PK key → row ordinal
	indexes map[string]map[string][]int // column → value key → row ordinals
}

// NewTable creates an empty table with the given schema.
func NewTable(schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		schema:  schema,
		indexes: make(map[string]map[string][]int),
	}
	if len(schema.PrimaryKey) > 0 {
		t.pkIndex = make(map[string]int)
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return &t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Row returns the i-th row. The returned slice must not be modified.
func (t *Table) Row(i int) Row { return t.rows[i] }

// Rows returns all rows. The returned slice must not be modified.
func (t *Table) Rows() []Row { return t.rows }

func (t *Table) pkKey(r Row) string {
	if len(t.schema.PrimaryKey) == 0 {
		return ""
	}
	var b []byte
	for _, col := range t.schema.PrimaryKey {
		i := t.schema.ColumnIndex(col)
		b = AppendKey(b, r[i])
	}
	return string(b)
}

// coerce converts v toward the declared column kind where lossless
// (INT literal into FLOAT column, numeric into STRING stays unchanged).
func coerce(v value.V, k value.Kind) value.V {
	if v.IsNull() || v.Kind() == k {
		return v
	}
	switch k {
	case value.KindFloat:
		if v.Kind() == value.KindInt {
			return value.Float(v.AsFloat())
		}
	case value.KindInt:
		if v.Kind() == value.KindFloat && v.AsFloat() == float64(v.AsInt()) {
			return value.Int(v.AsInt())
		}
	}
	return v
}

// Insert appends a row, enforcing arity, type coercion, and primary-key
// uniqueness. It returns the new row's ordinal.
func (t *Table) Insert(r Row) (int, error) {
	if len(r) != len(t.schema.Columns) {
		return 0, fmt.Errorf("relational: %s: insert arity %d, want %d",
			t.schema.Name, len(r), len(t.schema.Columns))
	}
	row := make(Row, len(r))
	for i, v := range r {
		row[i] = coerce(v, t.schema.Columns[i].Type)
	}
	if t.pkIndex != nil {
		k := t.pkKey(row)
		if _, dup := t.pkIndex[k]; dup {
			return 0, fmt.Errorf("relational: %s: duplicate primary key %v", t.schema.Name, k)
		}
		t.pkIndex[k] = len(t.rows)
	}
	ord := len(t.rows)
	t.rows = append(t.rows, row)
	for col, idx := range t.indexes {
		ci := t.schema.ColumnIndex(col)
		key := row[ci].Key()
		idx[key] = append(idx[key], ord)
	}
	return ord, nil
}

// InsertValues is Insert with variadic values, for convenience in tests
// and loaders.
func (t *Table) InsertValues(vals ...value.V) (int, error) { return t.Insert(vals) }

// LookupPK returns the row with the given primary-key values, if any.
func (t *Table) LookupPK(keyVals ...value.V) (Row, bool) {
	if t.pkIndex == nil || len(keyVals) != len(t.schema.PrimaryKey) {
		return nil, false
	}
	var b []byte
	for i, v := range keyVals {
		b = AppendKey(b, coerce(v, t.schema.Columns[t.schema.ColumnIndex(t.schema.PrimaryKey[i])].Type))
	}
	ord, ok := t.pkIndex[string(b)]
	if !ok {
		return nil, false
	}
	return t.rows[ord], true
}

// EnsureIndex builds (or reuses) a hash index on the named column and
// returns an error if the column does not exist.
func (t *Table) EnsureIndex(col string) error {
	if _, ok := t.indexes[col]; ok {
		return nil
	}
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		return fmt.Errorf("relational: %s: no column %q to index", t.schema.Name, col)
	}
	idx := make(map[string][]int)
	for ord, r := range t.rows {
		key := r[ci].Key()
		idx[key] = append(idx[key], ord)
	}
	t.indexes[col] = idx
	return nil
}

// HasIndex reports whether a hash index exists on col.
func (t *Table) HasIndex(col string) bool {
	_, ok := t.indexes[col]
	return ok
}

// LookupIndex returns the ordinals of rows whose col equals v, using the
// hash index on col. The index must exist (EnsureIndex).
func (t *Table) LookupIndex(col string, v value.V) []int {
	idx, ok := t.indexes[col]
	if !ok {
		return nil
	}
	return idx[v.Key()]
}

// Scan calls fn for every row; returning false stops the scan.
func (t *Table) Scan(fn func(ord int, r Row) bool) {
	for ord, r := range t.rows {
		if !fn(ord, r) {
			return
		}
	}
}

// Rel returns the table's contents as a result relation with columns
// qualified by the table name.
func (t *Table) Rel() *Rel {
	cols := make([]ColRef, len(t.schema.Columns))
	for i, c := range t.schema.Columns {
		cols[i] = ColRef{Table: t.schema.Name, Name: c.Name}
	}
	return &Rel{Cols: cols, Rows: t.rows}
}
