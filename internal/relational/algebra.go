package relational

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/value"
)

// Select returns the rows of r satisfying cond (σ). A nil condition
// returns r unchanged.
func Select(r *Rel, cond expr.Expr) (*Rel, error) {
	if cond == nil {
		return r, nil
	}
	out := &Rel{Cols: r.Cols}
	for _, row := range r.Rows {
		ok, err := expr.Truthy(cond, r.Env(row))
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Project returns r restricted to the named columns, in order (π without
// duplicate elimination; compose with Distinct for set semantics).
func Project(r *Rel, cols ...string) (*Rel, error) {
	idx := make([]int, len(cols))
	out := &Rel{Cols: make([]ColRef, len(cols))}
	for i, name := range cols {
		ci := r.ColIndex(name)
		if ci == -2 {
			return nil, fmt.Errorf("relational: ambiguous column %q", name)
		}
		if ci < 0 {
			return nil, fmt.Errorf("relational: no column %q", name)
		}
		idx[i] = ci
		out.Cols[i] = r.Cols[ci]
	}
	out.Rows = make([]Row, len(r.Rows))
	for ri, row := range r.Rows {
		pr := make(Row, len(idx))
		for i, ci := range idx {
			pr[i] = row[ci]
		}
		out.Rows[ri] = pr
	}
	return out, nil
}

// Distinct removes duplicate rows, preserving first-occurrence order.
func Distinct(r *Rel) *Rel {
	out := &Rel{Cols: r.Cols}
	seen := make(map[string]bool, len(r.Rows))
	for _, row := range r.Rows {
		k := RowKey(row)
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// AppendKey appends v's canonical key to dst, length-prefixed. A plain
// separator byte is not enough: value keys can contain any byte
// (including a 0x1f inside a string value), which made distinct rows
// collide under the old separator scheme. The 4-byte little-endian
// length prefix makes component boundaries unambiguous.
func AppendKey(dst []byte, v value.V) []byte {
	k := v.Key()
	n := len(k)
	dst = append(dst, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	return append(dst, k...)
}

// RowKey returns a collision-free identity key for a whole row, shared
// by every dedup/grouping map over rows (Distinct, GROUP BY, DISTINCT
// projection, primary-key indexes).
func RowKey(row Row) string {
	b := make([]byte, 0, 16*len(row))
	for _, v := range row {
		b = AppendKey(b, v)
	}
	return string(b)
}

// EquiJoin joins l and r on l.leftCol = r.rightCol using a hash join.
// Column sets are concatenated (l's columns first).
func EquiJoin(l, r *Rel, leftCol, rightCol string) (*Rel, error) {
	li := l.ColIndex(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("relational: join: left has no column %q", leftCol)
	}
	ri := r.ColIndex(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("relational: join: right has no column %q", rightCol)
	}
	out := &Rel{Cols: append(append([]ColRef{}, l.Cols...), r.Cols...)}
	// Build on the smaller side, keyed by the shared AppendKey encoding.
	var kb []byte
	if len(l.Rows) <= len(r.Rows) {
		build := make(map[string][]Row, len(l.Rows))
		for _, lr := range l.Rows {
			if lr[li].IsNull() {
				continue
			}
			kb = AppendKey(kb[:0], lr[li])
			build[string(kb)] = append(build[string(kb)], lr)
		}
		for _, rr := range r.Rows {
			if rr[ri].IsNull() {
				continue
			}
			kb = AppendKey(kb[:0], rr[ri])
			for _, lr := range build[string(kb)] {
				out.Rows = append(out.Rows, concatRows(lr, rr))
			}
		}
	} else {
		build := make(map[string][]Row, len(r.Rows))
		for _, rr := range r.Rows {
			if rr[ri].IsNull() {
				continue
			}
			kb = AppendKey(kb[:0], rr[ri])
			build[string(kb)] = append(build[string(kb)], rr)
		}
		for _, lr := range l.Rows {
			if lr[li].IsNull() {
				continue
			}
			kb = AppendKey(kb[:0], lr[li])
			for _, rr := range build[string(kb)] {
				out.Rows = append(out.Rows, concatRows(lr, rr))
			}
		}
	}
	return out, nil
}

func concatRows(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// ThetaJoin joins l and r on an arbitrary condition with a nested-loop
// join. Prefer EquiJoin when the condition is a single equality.
func ThetaJoin(l, r *Rel, cond expr.Expr) (*Rel, error) {
	out := &Rel{Cols: append(append([]ColRef{}, l.Cols...), r.Cols...)}
	for _, lr := range l.Rows {
		for _, rr := range r.Rows {
			joined := concatRows(lr, rr)
			if cond != nil {
				ok, err := expr.Truthy(cond, out.Env(joined))
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out.Rows = append(out.Rows, joined)
		}
	}
	return out, nil
}

// CrossJoin is ThetaJoin with no condition.
func CrossJoin(l, r *Rel) *Rel {
	out, _ := ThetaJoin(l, r, nil)
	return out
}

// SortKey orders rows by a column or arbitrary expression.
type SortKey struct {
	Expr expr.Expr
	Desc bool
}

// Sort returns r ordered by the given keys. The sort is stable.
func Sort(r *Rel, keys ...SortKey) (*Rel, error) {
	type keyed struct {
		row  Row
		vals []value.V
	}
	rows := make([]keyed, len(r.Rows))
	for i, row := range r.Rows {
		vals := make([]value.V, len(keys))
		env := r.Env(row)
		for ki, k := range keys {
			v, err := k.Expr.Eval(env)
			if err != nil {
				return nil, err
			}
			vals[ki] = v
		}
		rows[i] = keyed{row: row, vals: vals}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for ki := range keys {
			d := value.Compare(rows[i].vals[ki], rows[j].vals[ki])
			if d == 0 {
				continue
			}
			if keys[ki].Desc {
				return d > 0
			}
			return d < 0
		}
		return false
	})
	out := &Rel{Cols: r.Cols, Rows: make([]Row, len(rows))}
	for i, kr := range rows {
		out.Rows[i] = kr.row
	}
	return out, nil
}

// Limit returns at most n rows starting at offset. The row slice is
// copied so that appending to or reordering the returned relation cannot
// write through into the parent's Rows (the individual Row value slices
// are still shared, as everywhere in the algebra).
func Limit(r *Rel, offset, n int) *Rel {
	if offset < 0 {
		offset = 0
	}
	if offset >= len(r.Rows) {
		return &Rel{Cols: r.Cols}
	}
	end := len(r.Rows)
	if n >= 0 && offset+n < end {
		end = offset + n
	}
	rows := make([]Row, end-offset)
	copy(rows, r.Rows[offset:end])
	return &Rel{Cols: r.Cols, Rows: rows}
}

// Rename changes the table qualifier of every column (aliasing).
func Rename(r *Rel, alias string) *Rel {
	cols := make([]ColRef, len(r.Cols))
	for i, c := range r.Cols {
		cols[i] = ColRef{Table: alias, Name: c.Name}
	}
	return &Rel{Cols: cols, Rows: r.Rows}
}
