package relational

import (
	"testing"

	"repro/internal/value"
)

// TestDistinctSeparatorCollision pins the fix for the rowKey collision:
// under the old 0x1f-separator scheme these two distinct rows produced
// identical keys (the second value's leading bytes mimicked a component
// boundary), so Distinct dropped one of them.
func TestDistinctSeparatorCollision(t *testing.T) {
	r := &Rel{
		Cols: []ColRef{{Name: "a"}, {Name: "b"}},
		Rows: []Row{
			{value.Str("a"), value.Str("b\x1f\x03c")},
			{value.Str("a\x1f\x03b"), value.Str("c")},
		},
	}
	if got := Distinct(r); len(got.Rows) != 2 {
		t.Fatalf("Distinct collapsed %d distinct rows to %d", len(r.Rows), len(got.Rows))
	}
	if RowKey(r.Rows[0]) == RowKey(r.Rows[1]) {
		t.Fatal("RowKey still collides on embedded separator bytes")
	}
}

// TestEquiJoinSeparatorBytes asserts the shared keying joins values
// containing arbitrary bytes correctly.
func TestEquiJoinSeparatorBytes(t *testing.T) {
	l := &Rel{
		Cols: []ColRef{{Name: "k"}, {Name: "lv"}},
		Rows: []Row{
			{value.Str("x\x1fy"), value.Int(1)},
			{value.Str("x"), value.Int(2)},
		},
	}
	r := &Rel{
		Cols: []ColRef{{Name: "k2"}, {Name: "rv"}},
		Rows: []Row{
			{value.Str("x\x1fy"), value.Int(10)},
			{value.Str("z"), value.Int(20)},
		},
	}
	out, err := EquiJoin(l, r, "k", "k2")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 || out.Rows[0][1].AsInt() != 1 || out.Rows[0][3].AsInt() != 10 {
		t.Fatalf("join rows = %v", out.Rows)
	}
}

// TestLimitDoesNotAliasParent pins the Limit fix: appending to the
// limited relation's Rows must not write through into the parent.
func TestLimitDoesNotAliasParent(t *testing.T) {
	r := &Rel{
		Cols: []ColRef{{Name: "n"}},
		Rows: []Row{{value.Int(0)}, {value.Int(1)}, {value.Int(2)}},
	}
	lim := Limit(r, 0, 2)
	if len(lim.Rows) != 2 {
		t.Fatalf("limit rows = %d", len(lim.Rows))
	}
	lim.Rows = append(lim.Rows, Row{value.Int(99)})
	if r.Rows[2][0].AsInt() != 2 {
		t.Fatalf("parent row mutated through Limit alias: %v", r.Rows[2])
	}
	// Offset slicing must be copied too.
	tail := Limit(r, 1, -1)
	tail.Rows[0] = Row{value.Int(42)}
	if r.Rows[1][0].AsInt() != 1 {
		t.Fatalf("parent row replaced through Limit alias: %v", r.Rows[1])
	}
}
