package relational

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/value"
)

func testSchema() Schema {
	return Schema{
		Name: "Papers",
		Columns: []Column{
			{Name: "id", Type: value.KindInt},
			{Name: "conference_id", Type: value.KindInt},
			{Name: "title", Type: value.KindString},
			{Name: "year", Type: value.KindInt},
		},
		PrimaryKey:  []string{"id"},
		ForeignKeys: []ForeignKey{{Col: "conference_id", RefTable: "Conferences", RefCol: "id"}},
	}
}

func TestSchemaValidate(t *testing.T) {
	s := testSchema()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	bad := []Schema{
		{},
		{Name: "T"},
		{Name: "T", Columns: []Column{{Name: "a"}, {Name: "a"}}},
		{Name: "T", Columns: []Column{{Name: ""}}},
		{Name: "T", Columns: []Column{{Name: "a"}}, PrimaryKey: []string{"b"}},
		{Name: "T", Columns: []Column{{Name: "a"}},
			ForeignKeys: []ForeignKey{{Col: "z", RefTable: "X", RefCol: "id"}}},
		{Name: "T", Columns: []Column{{Name: "a"}},
			ForeignKeys: []ForeignKey{{Col: "a"}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := testSchema()
	if s.ColumnIndex("title") != 2 || s.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex")
	}
	if !s.HasColumn("year") || s.HasColumn("nope") {
		t.Error("HasColumn")
	}
	if !s.InPrimaryKey("id") || s.InPrimaryKey("year") {
		t.Error("InPrimaryKey")
	}
	if fk, ok := s.IsForeignKey("conference_id"); !ok || fk.RefTable != "Conferences" {
		t.Error("IsForeignKey")
	}
	if _, ok := s.IsForeignKey("title"); ok {
		t.Error("title is not a FK")
	}
	names := s.ColumnNames()
	if len(names) != 4 || names[0] != "id" {
		t.Errorf("ColumnNames = %v", names)
	}
}

func newPapers(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{value.Int(1), value.Int(1), value.Str("Making database systems usable"), value.Int(2007)},
		{value.Int(2), value.Int(1), value.Str("SkewTune"), value.Int(2012)},
		{value.Int(3), value.Int(2), value.Str("NetLens"), value.Int(2007)},
		{value.Int(4), value.Int(2), value.Str("GraphTrail"), value.Int(2012)},
		{value.Int(5), value.Int(1), value.Str("DataPlay"), value.Int(2012)},
	}
	for _, r := range rows {
		if _, err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestInsertAndPK(t *testing.T) {
	tbl := newPapers(t)
	if tbl.Len() != 5 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if _, err := tbl.Insert(Row{value.Int(1), value.Int(1), value.Str("dup"), value.Int(2000)}); err == nil {
		t.Error("duplicate PK accepted")
	}
	if _, err := tbl.Insert(Row{value.Int(9)}); err == nil {
		t.Error("wrong arity accepted")
	}
	r, ok := tbl.LookupPK(value.Int(3))
	if !ok || r[2].AsString() != "NetLens" {
		t.Errorf("LookupPK(3) = %v, %v", r, ok)
	}
	if _, ok := tbl.LookupPK(value.Int(99)); ok {
		t.Error("LookupPK(99) should miss")
	}
}

func TestCoerce(t *testing.T) {
	tbl, _ := NewTable(Schema{Name: "T", Columns: []Column{
		{Name: "f", Type: value.KindFloat},
		{Name: "i", Type: value.KindInt},
	}})
	if _, err := tbl.Insert(Row{value.Int(3), value.Float(4)}); err != nil {
		t.Fatal(err)
	}
	r := tbl.Row(0)
	if r[0].Kind() != value.KindFloat || r[1].Kind() != value.KindInt {
		t.Errorf("coercion failed: %v %v", r[0].Kind(), r[1].Kind())
	}
}

func TestIndexes(t *testing.T) {
	tbl := newPapers(t)
	if err := tbl.EnsureIndex("year"); err != nil {
		t.Fatal(err)
	}
	if !tbl.HasIndex("year") || tbl.HasIndex("title") {
		t.Error("HasIndex")
	}
	got := tbl.LookupIndex("year", value.Int(2012))
	if len(got) != 3 {
		t.Errorf("LookupIndex(2012) = %v", got)
	}
	// Index stays current across later inserts.
	if _, err := tbl.Insert(Row{value.Int(6), value.Int(1), value.Str("new"), value.Int(2012)}); err != nil {
		t.Fatal(err)
	}
	if got := tbl.LookupIndex("year", value.Int(2012)); len(got) != 4 {
		t.Errorf("index not maintained on insert: %v", got)
	}
	if err := tbl.EnsureIndex("nope"); err == nil {
		t.Error("indexing a missing column should fail")
	}
	if got := tbl.LookupIndex("title", value.Str("x")); got != nil {
		t.Error("lookup without index should return nil")
	}
}

func TestScan(t *testing.T) {
	tbl := newPapers(t)
	n := 0
	tbl.Scan(func(ord int, r Row) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("scan stopped at %d", n)
	}
}

func TestDBCatalog(t *testing.T) {
	db := NewDB()
	db.MustCreateTable(testSchema())
	if _, err := db.CreateTable(testSchema()); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.Table("Papers"); err != nil {
		t.Error(err)
	}
	if _, err := db.Table("Nope"); err == nil {
		t.Error("missing table should error")
	}
	if !db.HasTable("Papers") || db.HasTable("Nope") {
		t.Error("HasTable")
	}
	db.MustCreateTable(Schema{Name: "A", Columns: []Column{{Name: "x"}}})
	names := db.TableNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "Papers" {
		t.Errorf("TableNames = %v", names)
	}
	if err := db.DropTable("A"); err != nil {
		t.Error(err)
	}
	if err := db.DropTable("A"); err == nil {
		t.Error("double drop should error")
	}
	stats := db.Stats()
	if stats["Papers"] != 0 {
		t.Errorf("Stats = %v", stats)
	}
}

func TestCheckForeignKeys(t *testing.T) {
	db := NewDB()
	confs := db.MustCreateTable(Schema{
		Name:       "Conferences",
		Columns:    []Column{{Name: "id", Type: value.KindInt}, {Name: "acronym", Type: value.KindString}},
		PrimaryKey: []string{"id"},
	})
	confs.InsertValues(value.Int(1), value.Str("SIGMOD"))
	confs.InsertValues(value.Int(2), value.Str("CHI"))
	papers := db.MustCreateTable(testSchema())
	papers.InsertValues(value.Int(1), value.Int(1), value.Str("p1"), value.Int(2007))
	papers.InsertValues(value.Int(2), value.Null, value.Str("p2"), value.Int(2008))
	if err := db.CheckForeignKeys(); err != nil {
		t.Fatalf("valid FKs rejected: %v", err)
	}
	papers.InsertValues(value.Int(3), value.Int(99), value.Str("orphan"), value.Int(2009))
	if err := db.CheckForeignKeys(); err == nil {
		t.Error("dangling FK accepted")
	}
}

func relOf(t *testing.T) *Rel {
	t.Helper()
	return newPapers(t).Rel()
}

func TestSelect(t *testing.T) {
	r := relOf(t)
	out, err := Select(r, expr.MustParse("year = 2012"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 3 {
		t.Errorf("select rows = %d", len(out.Rows))
	}
	same, err := Select(r, nil)
	if err != nil || same != r {
		t.Error("nil condition should return input")
	}
	if _, err := Select(r, expr.MustParse("nope = 1")); err == nil {
		t.Error("unknown column should error")
	}
}

func TestProject(t *testing.T) {
	r := relOf(t)
	out, err := Project(r, "title", "year")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Cols) != 2 || len(out.Rows) != 5 {
		t.Errorf("project shape = %dx%d", len(out.Rows), len(out.Cols))
	}
	if out.Rows[0][0].AsString() != "Making database systems usable" {
		t.Error("projection content wrong")
	}
	if _, err := Project(r, "nope"); err == nil {
		t.Error("projecting missing column should fail")
	}
	// Qualified projection.
	if _, err := Project(r, "Papers.year"); err != nil {
		t.Error(err)
	}
}

func TestDistinct(t *testing.T) {
	r := relOf(t)
	years, _ := Project(r, "year")
	d := Distinct(years)
	if len(d.Rows) != 2 {
		t.Errorf("distinct years = %d, want 2", len(d.Rows))
	}
	if len(Distinct(d).Rows) != len(d.Rows) {
		t.Error("Distinct not idempotent")
	}
}

func TestEquiJoin(t *testing.T) {
	db := NewDB()
	confs := db.MustCreateTable(Schema{
		Name:       "Conferences",
		Columns:    []Column{{Name: "id", Type: value.KindInt}, {Name: "acronym", Type: value.KindString}},
		PrimaryKey: []string{"id"},
	})
	confs.InsertValues(value.Int(1), value.Str("SIGMOD"))
	confs.InsertValues(value.Int(2), value.Str("CHI"))
	confs.InsertValues(value.Int(3), value.Str("KDD")) // no papers
	papers := newPapers(t)

	j, err := EquiJoin(papers.Rel(), confs.Rel(), "conference_id", "Conferences.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Rows) != 5 {
		t.Errorf("join rows = %d, want 5", len(j.Rows))
	}
	if len(j.Cols) != 6 {
		t.Errorf("join cols = %d, want 6", len(j.Cols))
	}
	// Filter joined result on the conference acronym.
	f, err := Select(j, expr.MustParse("acronym = 'SIGMOD'"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 3 {
		t.Errorf("SIGMOD papers = %d, want 3", len(f.Rows))
	}
	// Join in the other direction produces the same number of rows.
	j2, err := EquiJoin(confs.Rel(), papers.Rel(), "id", "conference_id")
	if err != nil {
		t.Fatal(err)
	}
	if len(j2.Rows) != len(j.Rows) {
		t.Errorf("join direction changed cardinality: %d vs %d", len(j2.Rows), len(j.Rows))
	}
	if _, err := EquiJoin(papers.Rel(), confs.Rel(), "nope", "id"); err == nil {
		t.Error("bad left column accepted")
	}
	if _, err := EquiJoin(papers.Rel(), confs.Rel(), "id", "nope"); err == nil {
		t.Error("bad right column accepted")
	}
}

func TestJoinSkipsNulls(t *testing.T) {
	l := &Rel{Cols: []ColRef{{Name: "k"}}, Rows: []Row{{value.Null}, {value.Int(1)}}}
	r := &Rel{Cols: []ColRef{{Name: "k2"}}, Rows: []Row{{value.Null}, {value.Int(1)}}}
	j, err := EquiJoin(l, r, "k", "k2")
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Rows) != 1 {
		t.Errorf("NULL keys must not join: rows = %d", len(j.Rows))
	}
}

func TestThetaAndCrossJoin(t *testing.T) {
	a := &Rel{Cols: []ColRef{{Name: "x"}}, Rows: []Row{{value.Int(1)}, {value.Int(2)}}}
	b := &Rel{Cols: []ColRef{{Name: "y"}}, Rows: []Row{{value.Int(1)}, {value.Int(2)}, {value.Int(3)}}}
	cross := CrossJoin(a, b)
	if len(cross.Rows) != 6 {
		t.Errorf("cross join = %d rows", len(cross.Rows))
	}
	lt, err := ThetaJoin(a, b, expr.MustParse("x < y"))
	if err != nil {
		t.Fatal(err)
	}
	if len(lt.Rows) != 3 { // (1,2) (1,3) (2,3)
		t.Errorf("theta join = %d rows, want 3", len(lt.Rows))
	}
}

func TestSortAndLimit(t *testing.T) {
	r := relOf(t)
	s, err := Sort(r, SortKey{Expr: expr.Col{Name: "year"}, Desc: true},
		SortKey{Expr: expr.Col{Name: "title"}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows[0][3].AsInt() != 2012 || s.Rows[0][2].AsString() != "DataPlay" {
		t.Errorf("sort order wrong: %v", s.Rows[0])
	}
	top2 := Limit(s, 0, 2)
	if len(top2.Rows) != 2 {
		t.Error("limit")
	}
	if got := Limit(s, 4, 10); len(got.Rows) != 1 {
		t.Errorf("offset limit = %d", len(got.Rows))
	}
	if got := Limit(s, 99, 1); len(got.Rows) != 0 {
		t.Error("past-end limit should be empty")
	}
	if got := Limit(s, -5, -1); len(got.Rows) != 5 {
		t.Error("negative offset/limit should pass through")
	}
}

func TestGroupBy(t *testing.T) {
	r := relOf(t)
	out, err := GroupBy(r,
		[]expr.Expr{expr.Col{Name: "year"}}, []string{"year"},
		[]Aggregate{
			{Func: AggCount, As: "n"},
			{Func: AggMin, Arg: expr.Col{Name: "title"}, As: "first_title"},
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("groups = %d", len(out.Rows))
	}
	byYear := map[int64]Row{}
	for _, row := range out.Rows {
		byYear[row[0].AsInt()] = row
	}
	if byYear[2007][1].AsInt() != 2 || byYear[2012][1].AsInt() != 3 {
		t.Errorf("counts wrong: %v", byYear)
	}
	if byYear[2007][2].AsString() != "Making database systems usable" {
		t.Errorf("min title = %v", byYear[2007][2])
	}
}

func TestGlobalAggregates(t *testing.T) {
	r := relOf(t)
	out, err := GroupBy(r, nil, nil, []Aggregate{
		{Func: AggCount, As: "n"},
		{Func: AggSum, Arg: expr.Col{Name: "year"}, As: "sum_year"},
		{Func: AggAvg, Arg: expr.Col{Name: "year"}, As: "avg_year"},
		{Func: AggMin, Arg: expr.Col{Name: "year"}, As: "min_year"},
		{Func: AggMax, Arg: expr.Col{Name: "year"}, As: "max_year"},
		{Func: AggCountDistinct, Arg: expr.Col{Name: "year"}, As: "d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 {
		t.Fatalf("global aggregate rows = %d", len(out.Rows))
	}
	row := out.Rows[0]
	if row[0].AsInt() != 5 || row[1].AsInt() != 2007+2012*3+2007 ||
		row[3].AsInt() != 2007 || row[4].AsInt() != 2012 || row[5].AsInt() != 2 {
		t.Errorf("aggregates = %v", row)
	}
	wantAvg := float64(2007+2012*3+2007) / 5
	if row[2].AsFloat() != wantAvg {
		t.Errorf("avg = %v, want %v", row[2], wantAvg)
	}
}

func TestAggregatesOverEmptyInput(t *testing.T) {
	empty := &Rel{Cols: []ColRef{{Name: "x"}}}
	out, err := GroupBy(empty, nil, nil, []Aggregate{
		{Func: AggCount, As: "n"},
		{Func: AggSum, Arg: expr.Col{Name: "x"}, As: "s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 || out.Rows[0][0].AsInt() != 0 || !out.Rows[0][1].IsNull() {
		t.Errorf("empty aggregate = %v", out.Rows)
	}
	// Grouped aggregate over empty input yields zero rows.
	out2, err := GroupBy(empty, []expr.Expr{expr.Col{Name: "x"}}, []string{"x"},
		[]Aggregate{{Func: AggCount, As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out2.Rows) != 0 {
		t.Errorf("grouped empty = %v", out2.Rows)
	}
}

func TestAggregateNullHandling(t *testing.T) {
	r := &Rel{
		Cols: []ColRef{{Name: "x"}},
		Rows: []Row{{value.Int(1)}, {value.Null}, {value.Int(3)}},
	}
	out, err := GroupBy(r, nil, nil, []Aggregate{
		{Func: AggCount, As: "star"},                          // COUNT(*) = 3
		{Func: AggCount, Arg: expr.Col{Name: "x"}, As: "cnt"}, // COUNT(x) = 2
		{Func: AggAvg, Arg: expr.Col{Name: "x"}, As: "avg"},   // AVG = 2
	})
	if err != nil {
		t.Fatal(err)
	}
	row := out.Rows[0]
	if row[0].AsInt() != 3 || row[1].AsInt() != 2 || row[2].AsFloat() != 2 {
		t.Errorf("null handling = %v", row)
	}
}

func TestColIndexResolution(t *testing.T) {
	r := &Rel{Cols: []ColRef{
		{Table: "a", Name: "id"}, {Table: "b", Name: "id"}, {Table: "a", Name: "x"},
	}}
	if got := r.ColIndex("a.id"); got != 0 {
		t.Errorf("a.id = %d", got)
	}
	if got := r.ColIndex("b.id"); got != 1 {
		t.Errorf("b.id = %d", got)
	}
	if got := r.ColIndex("id"); got != -2 {
		t.Errorf("bare ambiguous id = %d, want -2", got)
	}
	if got := r.ColIndex("x"); got != 2 {
		t.Errorf("x = %d", got)
	}
	if got := r.ColIndex("nope"); got != -1 {
		t.Errorf("nope = %d", got)
	}
}

func TestRename(t *testing.T) {
	r := relOf(t)
	out := Rename(r, "p")
	if out.Cols[0].Table != "p" {
		t.Errorf("Rename = %v", out.Cols[0])
	}
	if got := out.ColIndex("p.year"); got != 3 {
		t.Errorf("p.year = %d", got)
	}
}

func TestSingleValue(t *testing.T) {
	r := &Rel{Cols: []ColRef{{Name: "n"}}, Rows: []Row{{value.Int(7)}}}
	v, err := SingleValue(r)
	if err != nil || v.AsInt() != 7 {
		t.Errorf("SingleValue = %v, %v", v, err)
	}
	if _, err := SingleValue(relOf(t)); err == nil {
		t.Error("non-1x1 should error")
	}
}

func TestRelCloneAndNames(t *testing.T) {
	r := relOf(t)
	c := r.Clone()
	c.Rows = c.Rows[:1]
	if len(r.Rows) != 5 {
		t.Error("Clone should not share row slice length")
	}
	names := r.ColumnNames()
	if names[0] != "Papers.id" {
		t.Errorf("ColumnNames = %v", names)
	}
}
