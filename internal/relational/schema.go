// Package relational implements the in-memory relational database engine
// that serves as the substrate the paper runs on (the authors used
// PostgreSQL; see DESIGN.md for the substitution rationale). It provides
// a catalog of tables with primary- and foreign-key constraints, hash
// indexes, and the relational algebra operators (selection, projection,
// join, grouping/aggregation, sorting) needed by the ETable query
// translation layer and by the SQL subset executor.
package relational

import (
	"fmt"

	"repro/internal/value"
)

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type value.Kind
}

// ForeignKey declares that Col references RefTable.RefCol.
type ForeignKey struct {
	Col      string
	RefTable string
	RefCol   string
}

// Schema describes a table: its name, ordered columns, primary key, and
// foreign keys. A composite primary key lists multiple columns.
type Schema struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []ForeignKey
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// HasColumn reports whether the schema has the named column.
func (s *Schema) HasColumn(name string) bool { return s.ColumnIndex(name) >= 0 }

// ColumnNames returns the column names in order.
func (s *Schema) ColumnNames() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// IsForeignKey reports whether the named column participates in a foreign
// key, and returns that key.
func (s *Schema) IsForeignKey(col string) (ForeignKey, bool) {
	for _, fk := range s.ForeignKeys {
		if fk.Col == col {
			return fk, true
		}
	}
	return ForeignKey{}, false
}

// InPrimaryKey reports whether the named column is part of the primary key.
func (s *Schema) InPrimaryKey(col string) bool {
	for _, k := range s.PrimaryKey {
		if k == col {
			return true
		}
	}
	return false
}

// Validate checks internal consistency: non-empty name, unique column
// names, PK and FK columns exist.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("relational: schema with empty name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("relational: table %s has no columns", s.Name)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("relational: table %s has an unnamed column", s.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("relational: table %s has duplicate column %q", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	for _, k := range s.PrimaryKey {
		if !seen[k] {
			return fmt.Errorf("relational: table %s primary key column %q does not exist", s.Name, k)
		}
	}
	for _, fk := range s.ForeignKeys {
		if !seen[fk.Col] {
			return fmt.Errorf("relational: table %s foreign key column %q does not exist", s.Name, fk.Col)
		}
		if fk.RefTable == "" || fk.RefCol == "" {
			return fmt.Errorf("relational: table %s foreign key %q has empty target", s.Name, fk.Col)
		}
	}
	return nil
}
