package relational

import (
	"strings"

	"repro/internal/expr"
	"repro/internal/value"
)

// ColRef names a column of a result relation, optionally qualified by the
// table (or alias) it came from.
type ColRef struct {
	Table string
	Name  string
}

// String renders the reference as Table.Name or Name.
func (c ColRef) String() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Rel is an intermediate or final query result: ordered columns and rows.
// Unlike a base Table it carries no constraints and may contain
// duplicates (it is a bag, as in SQL).
type Rel struct {
	Cols []ColRef
	Rows []Row
}

// ColIndex resolves name to a column ordinal. A name matches a column
// when it equals the column's full rendered name ("t.c") or its bare name
// ("c", including names that themselves contain dots, such as the
// materialized aggregate column "sum(Papers.year)"). If no column matches
// directly, a dotted name falls back to its bare suffix. It returns -1
// when not found and -2 when ambiguous.
func (r *Rel) ColIndex(name string) int {
	found := -1
	for ci, c := range r.Cols {
		if c.Name == name || c.Table != "" && c.String() == name {
			if found >= 0 {
				return -2
			}
			found = ci
		}
	}
	if found >= 0 {
		return found
	}
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return r.ColIndex(name[i+1:])
	}
	return -1
}

// Env adapts one row for expression evaluation.
func (r *Rel) Env(row Row) expr.Env { return rowEnv{rel: r, row: row} }

type rowEnv struct {
	rel *Rel
	row Row
}

// Lookup implements expr.Env.
func (e rowEnv) Lookup(name string) (value.V, bool) {
	ci := e.rel.ColIndex(name)
	if ci < 0 {
		return value.Null, false
	}
	return e.row[ci], true
}

// Clone deep-copies the relation's row slice (rows themselves are shared,
// as they are treated as immutable).
func (r *Rel) Clone() *Rel {
	cols := make([]ColRef, len(r.Cols))
	copy(cols, r.Cols)
	rows := make([]Row, len(r.Rows))
	copy(rows, r.Rows)
	return &Rel{Cols: cols, Rows: rows}
}

// ColumnNames returns the rendered column names.
func (r *Rel) ColumnNames() []string {
	names := make([]string, len(r.Cols))
	for i, c := range r.Cols {
		names[i] = c.String()
	}
	return names
}
