package relational

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/value"
)

// AggFunc identifies an aggregate function.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota // COUNT(*) when Arg is nil, else COUNT(expr)
	AggCountDistinct
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL name of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggCountDistinct:
		return "COUNT DISTINCT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return "?"
	}
}

// Aggregate describes one aggregate output column.
type Aggregate struct {
	Func AggFunc
	Arg  expr.Expr // nil means * (COUNT only)
	As   string    // output column name
}

// GroupBy groups r by the given key expressions and computes the
// aggregates per group. Output columns are the keys (named keyNames)
// followed by the aggregates (named by As). With no keys, a single
// global group is produced (even over an empty input, as in SQL).
func GroupBy(r *Rel, keys []expr.Expr, keyNames []string, aggs []Aggregate) (*Rel, error) {
	if len(keys) != len(keyNames) {
		return nil, fmt.Errorf("relational: GroupBy: %d keys but %d names", len(keys), len(keyNames))
	}
	out := &Rel{}
	for _, n := range keyNames {
		out.Cols = append(out.Cols, ColRef{Name: n})
	}
	for _, a := range aggs {
		name := a.As
		if name == "" {
			name = a.Func.String()
		}
		out.Cols = append(out.Cols, ColRef{Name: name})
	}

	type group struct {
		keyVals []value.V
		states  []aggState
	}
	groups := make(map[string]*group)
	var order []string

	for _, row := range r.Rows {
		env := r.Env(row)
		keyVals := make([]value.V, len(keys))
		var kb []byte
		for i, k := range keys {
			v, err := k.Eval(env)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
			kb = AppendKey(kb, v)
		}
		gk := string(kb)
		g, ok := groups[gk]
		if !ok {
			g = &group{keyVals: keyVals, states: newAggStates(aggs)}
			groups[gk] = g
			order = append(order, gk)
		}
		for i, a := range aggs {
			var v value.V
			if a.Arg != nil {
				av, err := a.Arg.Eval(env)
				if err != nil {
					return nil, err
				}
				v = av
			}
			g.states[i].add(v, a.Arg == nil)
		}
	}

	if len(keys) == 0 && len(groups) == 0 {
		// Global aggregate over empty input still yields one row.
		g := &group{states: newAggStates(aggs)}
		groups[""] = g
		order = append(order, "")
	}

	for _, gk := range order {
		g := groups[gk]
		row := make(Row, 0, len(g.keyVals)+len(aggs))
		row = append(row, g.keyVals...)
		for i := range aggs {
			row = append(row, g.states[i].result())
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

type aggState struct {
	fn       AggFunc
	count    int64
	sum      float64
	sumInt   int64
	allInt   bool
	min, max value.V
	distinct map[string]bool
}

func newAggStates(aggs []Aggregate) []aggState {
	states := make([]aggState, len(aggs))
	for i, a := range aggs {
		states[i] = aggState{fn: a.Func, allInt: true, min: value.Null, max: value.Null}
		if a.Func == AggCountDistinct {
			states[i].distinct = make(map[string]bool)
		}
	}
	return states
}

// add folds one value into the state. star is true for COUNT(*), which
// counts rows regardless of NULLs; all other aggregates skip NULLs.
func (s *aggState) add(v value.V, star bool) {
	if star {
		s.count++
		return
	}
	if v.IsNull() {
		return
	}
	switch s.fn {
	case AggCount:
		s.count++
	case AggCountDistinct:
		s.distinct[v.Key()] = true
	case AggSum, AggAvg:
		s.count++
		if v.Kind() == value.KindInt {
			s.sumInt += v.AsInt()
		} else {
			s.allInt = false
		}
		s.sum += v.AsFloat()
	case AggMin:
		if s.min.IsNull() || value.Compare(v, s.min) < 0 {
			s.min = v
		}
	case AggMax:
		if s.max.IsNull() || value.Compare(v, s.max) > 0 {
			s.max = v
		}
	}
}

func (s *aggState) result() value.V {
	switch s.fn {
	case AggCount:
		return value.Int(s.count)
	case AggCountDistinct:
		return value.Int(int64(len(s.distinct)))
	case AggSum:
		if s.count == 0 {
			return value.Null
		}
		if s.allInt {
			return value.Int(s.sumInt)
		}
		return value.Float(s.sum)
	case AggAvg:
		if s.count == 0 {
			return value.Null
		}
		return value.Float(s.sum / float64(s.count))
	case AggMin:
		return s.min
	case AggMax:
		return s.max
	default:
		return value.Null
	}
}
