package relational

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/value"
)

// DB is a catalog of tables. Reads may proceed concurrently; writes are
// serialized by an RWMutex (the HTTP server reads, loaders write).
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable creates a new table with the given schema.
func (db *DB) CreateTable(schema Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[schema.Name]; exists {
		return nil, fmt.Errorf("relational: table %q already exists", schema.Name)
	}
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	db.tables[schema.Name] = t
	return t, nil
}

// MustCreateTable is CreateTable that panics on error, for fixed schema
// definitions in loaders and tests.
func (db *DB) MustCreateTable(schema Schema) *Table {
	t, err := db.CreateTable(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns the named table, or an error naming it if absent.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("relational: no table %q", name)
	}
	return t, nil
}

// HasTable reports whether the named table exists.
func (db *DB) HasTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.tables[name]
	return ok
}

// TableNames returns the sorted names of all tables.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DropTable removes the named table.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("relational: no table %q", name)
	}
	delete(db.tables, name)
	return nil
}

// CheckForeignKeys verifies that every foreign-key value in every table
// references an existing row, returning the first violation found. NULL
// foreign keys are permitted.
func (db *DB) CheckForeignKeys() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, t := range db.tables {
		for _, fk := range t.schema.ForeignKeys {
			ref, ok := db.tables[fk.RefTable]
			if !ok {
				return fmt.Errorf("relational: %s.%s references missing table %q",
					t.Name(), fk.Col, fk.RefTable)
			}
			refIdx := ref.schema.ColumnIndex(fk.RefCol)
			if refIdx < 0 {
				return fmt.Errorf("relational: %s.%s references missing column %s.%s",
					t.Name(), fk.Col, fk.RefTable, fk.RefCol)
			}
			if err := ref.EnsureIndex(fk.RefCol); err != nil {
				return err
			}
			ci := t.schema.ColumnIndex(fk.Col)
			for ord, r := range t.rows {
				v := r[ci]
				if v.IsNull() {
					continue
				}
				if len(ref.LookupIndex(fk.RefCol, v)) == 0 {
					return fmt.Errorf("relational: %s row %d: %s=%v has no match in %s.%s",
						t.Name(), ord, fk.Col, v, fk.RefTable, fk.RefCol)
				}
			}
		}
	}
	return nil
}

// Stats summarizes the database: per-table row counts.
func (db *DB) Stats() map[string]int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string]int, len(db.tables))
	for n, t := range db.tables {
		out[n] = t.Len()
	}
	return out
}

// SingleValue is a convenience that extracts the sole value of a 1x1
// relation, as produced by aggregate queries.
func SingleValue(r *Rel) (value.V, error) {
	if len(r.Rows) != 1 || len(r.Cols) != 1 {
		return value.Null, fmt.Errorf("relational: expected 1x1 result, got %dx%d",
			len(r.Rows), len(r.Cols))
	}
	return r.Rows[0][0], nil
}
