package testdb

import "testing"

func TestFigure3DBIntegrity(t *testing.T) {
	db, err := Figure3DB()
	if err != nil {
		t.Fatal(err)
	}
	stats := db.Stats()
	want := map[string]int{
		"Conferences": 3, "Institutions": 4, "Authors": 5, "Papers": 6,
		"Paper_Authors": 9, "Paper_References": 6, "Paper_Keywords": 7,
	}
	for table, n := range want {
		if stats[table] != n {
			t.Errorf("%s = %d rows, want %d", table, stats[table], n)
		}
	}
	if err := db.CheckForeignKeys(); err != nil {
		t.Errorf("referential integrity: %v", err)
	}
}

func TestFigure3Translation(t *testing.T) {
	tr, err := Figure3Translation()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Schema.NodeTypes()); got != 7 {
		t.Errorf("node types = %d, want 7 (4 entity + keyword + year + country)", got)
	}
	s := tr.Instance.ComputeStats()
	if s.Nodes == 0 || s.Edges == 0 {
		t.Errorf("instance graph empty: %+v", s)
	}
}
