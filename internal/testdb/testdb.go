// Package testdb provides the small Figure 3 / Figure 5 academic
// database used as a shared fixture by tests across the presentation,
// session, storage, and server packages. It is deliberately tiny and
// hand-checkable; the full-scale synthetic dataset lives in
// internal/dataset.
package testdb

import (
	"fmt"

	"repro/internal/relational"
	"repro/internal/translate"
	"repro/internal/value"
)

// Figure3DB builds the paper's Figure 3 schema (7 relations, 7 foreign
// keys) with a small instance mirroring Figure 5's excerpt.
func Figure3DB() (*relational.DB, error) {
	db := relational.NewDB()
	creates := []relational.Schema{
		{
			Name: "Conferences",
			Columns: []relational.Column{
				{Name: "id", Type: value.KindInt},
				{Name: "acronym", Type: value.KindString},
				{Name: "title", Type: value.KindString},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "Institutions",
			Columns: []relational.Column{
				{Name: "id", Type: value.KindInt},
				{Name: "name", Type: value.KindString},
				{Name: "country", Type: value.KindString},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "Authors",
			Columns: []relational.Column{
				{Name: "id", Type: value.KindInt},
				{Name: "name", Type: value.KindString},
				{Name: "institution_id", Type: value.KindInt},
			},
			PrimaryKey: []string{"id"},
			ForeignKeys: []relational.ForeignKey{
				{Col: "institution_id", RefTable: "Institutions", RefCol: "id"},
			},
		},
		{
			Name: "Papers",
			Columns: []relational.Column{
				{Name: "id", Type: value.KindInt},
				{Name: "conference_id", Type: value.KindInt},
				{Name: "title", Type: value.KindString},
				{Name: "year", Type: value.KindInt},
				{Name: "page_start", Type: value.KindInt},
				{Name: "page_end", Type: value.KindInt},
			},
			PrimaryKey: []string{"id"},
			ForeignKeys: []relational.ForeignKey{
				{Col: "conference_id", RefTable: "Conferences", RefCol: "id"},
			},
		},
		{
			Name: "Paper_Authors",
			Columns: []relational.Column{
				{Name: "paper_id", Type: value.KindInt},
				{Name: "author_id", Type: value.KindInt},
				{Name: "order", Type: value.KindInt},
			},
			PrimaryKey: []string{"paper_id", "author_id"},
			ForeignKeys: []relational.ForeignKey{
				{Col: "paper_id", RefTable: "Papers", RefCol: "id"},
				{Col: "author_id", RefTable: "Authors", RefCol: "id"},
			},
		},
		{
			Name: "Paper_References",
			Columns: []relational.Column{
				{Name: "paper_id", Type: value.KindInt},
				{Name: "ref_paper_id", Type: value.KindInt},
			},
			PrimaryKey: []string{"paper_id", "ref_paper_id"},
			ForeignKeys: []relational.ForeignKey{
				{Col: "paper_id", RefTable: "Papers", RefCol: "id"},
				{Col: "ref_paper_id", RefTable: "Papers", RefCol: "id"},
			},
		},
		{
			Name: "Paper_Keywords",
			Columns: []relational.Column{
				{Name: "paper_id", Type: value.KindInt},
				{Name: "keyword", Type: value.KindString},
			},
			PrimaryKey: []string{"paper_id", "keyword"},
			ForeignKeys: []relational.ForeignKey{
				{Col: "paper_id", RefTable: "Papers", RefCol: "id"},
			},
		},
	}
	for _, s := range creates {
		if _, err := db.CreateTable(s); err != nil {
			return nil, err
		}
	}

	ins := func(table string, rows ...[]value.V) error {
		tb, err := db.Table(table)
		if err != nil {
			return err
		}
		for _, r := range rows {
			if _, err := tb.Insert(r); err != nil {
				return err
			}
		}
		return nil
	}
	steps := []error{
		ins("Conferences",
			[]value.V{value.Int(1), value.Str("SIGMOD"), value.Str("ACM SIGMOD Conference")},
			[]value.V{value.Int(2), value.Str("KDD"), value.Str("ACM SIGKDD Conference")},
			[]value.V{value.Int(3), value.Str("CHI"), value.Str("ACM CHI Conference")},
		),
		ins("Institutions",
			[]value.V{value.Int(1), value.Str("Univ. of Michigan"), value.Str("USA")},
			[]value.V{value.Int(2), value.Str("Seoul National Univ."), value.Str("South Korea")},
			[]value.V{value.Int(3), value.Str("Univ. of Washington"), value.Str("USA")},
			[]value.V{value.Int(4), value.Str("KAIST"), value.Str("South Korea")},
		),
		ins("Authors",
			[]value.V{value.Int(1), value.Str("H. V. Jagadish"), value.Int(1)},
			[]value.V{value.Int(2), value.Str("Arnab Nandi"), value.Int(1)},
			[]value.V{value.Int(3), value.Str("Jeff Heer"), value.Int(3)},
			[]value.V{value.Int(4), value.Str("Minsuk Kahng"), value.Int(2)},
			[]value.V{value.Int(5), value.Str("Sang Kim"), value.Int(4)},
		),
		ins("Papers",
			[]value.V{value.Int(1), value.Int(1), value.Str("Making database systems usable"), value.Int(2007), value.Int(13), value.Int(24)},
			[]value.V{value.Int(2), value.Int(1), value.Str("Schema-free SQL"), value.Int(2014), value.Int(1051), value.Int(1062)},
			[]value.V{value.Int(3), value.Int(3), value.Str("Wrangler: interactive visual specification"), value.Int(2011), value.Int(3363), value.Int(3372)},
			[]value.V{value.Int(4), value.Int(2), value.Str("Collaborative filtering with temporal dynamics"), value.Int(2009), value.Int(447), value.Int(456)},
			[]value.V{value.Int(5), value.Int(1), value.Str("Organic databases"), value.Int(2011), value.Int(49), value.Int(63)},
			[]value.V{value.Int(6), value.Int(1), value.Str("Guided interaction"), value.Int(2011), value.Int(1466), value.Int(1469)},
		),
		ins("Paper_Authors",
			[]value.V{value.Int(1), value.Int(1), value.Int(1)},
			[]value.V{value.Int(1), value.Int(2), value.Int(2)},
			[]value.V{value.Int(2), value.Int(1), value.Int(1)},
			[]value.V{value.Int(3), value.Int(3), value.Int(1)},
			[]value.V{value.Int(4), value.Int(4), value.Int(1)},
			[]value.V{value.Int(5), value.Int(1), value.Int(1)},
			[]value.V{value.Int(5), value.Int(2), value.Int(2)},
			[]value.V{value.Int(6), value.Int(2), value.Int(1)},
			[]value.V{value.Int(6), value.Int(5), value.Int(2)},
		),
		ins("Paper_References",
			[]value.V{value.Int(2), value.Int(1)},
			[]value.V{value.Int(3), value.Int(1)},
			[]value.V{value.Int(4), value.Int(3)},
			[]value.V{value.Int(5), value.Int(1)},
			[]value.V{value.Int(6), value.Int(1)},
			[]value.V{value.Int(6), value.Int(5)},
		),
		ins("Paper_Keywords",
			[]value.V{value.Int(1), value.Str("usability")},
			[]value.V{value.Int(1), value.Str("user interface")},
			[]value.V{value.Int(2), value.Str("user interface")},
			[]value.V{value.Int(3), value.Str("data cleaning")},
			[]value.V{value.Int(5), value.Str("usability")},
			[]value.V{value.Int(6), value.Str("user interface")},
			[]value.V{value.Int(6), value.Str("query specification")},
		),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	if err := db.CheckForeignKeys(); err != nil {
		return nil, fmt.Errorf("testdb: %w", err)
	}
	return db, nil
}

// Figure3Translation translates the Figure 3 database with the
// categorical attributes the paper's figures use (Papers.year,
// Institutions.country).
func Figure3Translation() (*translate.Result, error) {
	db, err := Figure3DB()
	if err != nil {
		return nil, err
	}
	return translate.Translate(db, translate.Options{
		CategoricalAttrs: []string{"Papers.year", "Institutions.country"},
	})
}
