package dataset

import (
	"testing"

	"repro/internal/etable"
	"repro/internal/relational"
	"repro/internal/value"
)

func generateSmall(t testing.TB) *relational.DB {
	t.Helper()
	db, err := Generate(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestScaleAndIntegrity(t *testing.T) {
	db := generateSmall(t)
	stats := db.Stats()
	if stats["Papers"] != 300 || stats["Conferences"] != 19 {
		t.Errorf("stats = %v", stats)
	}
	if stats["Authors"] != 150 || stats["Institutions"] != 40 {
		t.Errorf("stats = %v", stats)
	}
	if stats["Paper_Authors"] < 300 {
		t.Errorf("paper_authors = %d, want >= one per paper", stats["Paper_Authors"])
	}
	if stats["Paper_Keywords"] < 3*300 {
		t.Errorf("paper_keywords = %d, want >= 3 per paper", stats["Paper_Keywords"])
	}
	if err := db.CheckForeignKeys(); err != nil {
		t.Errorf("referential integrity: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	a := generateSmall(t)
	b := generateSmall(t)
	at, _ := a.Table("Papers")
	bt, _ := b.Table("Papers")
	if at.Len() != bt.Len() {
		t.Fatal("row counts differ")
	}
	for i := 0; i < at.Len(); i++ {
		ra, rb := at.Row(i), bt.Row(i)
		for c := range ra {
			if !value.Equal(ra[c], rb[c]) {
				t.Fatalf("row %d col %d differs: %v vs %v", i, c, ra[c], rb[c])
			}
		}
	}
	// Different seeds diverge.
	cfg := SmallConfig()
	cfg.Seed = 99
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := c.Table("Papers")
	same := true
	for i := 0; i < minInt(ct.Len(), at.Len()) && same; i++ {
		if !value.Equal(ct.Row(i)[2], at.Row(i)[2]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical titles")
	}
}

func TestYearBounds(t *testing.T) {
	db := generateSmall(t)
	papers, _ := db.Table("Papers")
	for _, r := range papers.Rows() {
		y := r[3].AsInt()
		if y < 2000 || y > 2015 {
			t.Fatalf("year %d out of range", y)
		}
	}
}

func TestCitationsPointBackward(t *testing.T) {
	db := generateSmall(t)
	refs, _ := db.Table("Paper_References")
	for _, r := range refs.Rows() {
		if r[1].AsInt() >= r[0].AsInt() {
			t.Fatalf("paper %d cites non-older paper %d", r[0].AsInt(), r[1].AsInt())
		}
	}
}

func TestSkewShapes(t *testing.T) {
	db := generateSmall(t)
	// Author productivity is skewed: the most productive author has
	// several times the mean.
	pa, _ := db.Table("Paper_Authors")
	counts := map[int64]int{}
	for _, r := range pa.Rows() {
		counts[r[1].AsInt()]++
	}
	maxC, total := 0, 0
	for _, c := range counts {
		total += c
		if c > maxC {
			maxC = c
		}
	}
	mean := float64(total) / float64(len(counts))
	if float64(maxC) < 2*mean {
		t.Errorf("productivity not skewed: max %d vs mean %.1f", maxC, mean)
	}
	// Citation in-degree is skewed too.
	refs, _ := db.Table("Paper_References")
	inDeg := map[int64]int{}
	for _, r := range refs.Rows() {
		inDeg[r[1].AsInt()]++
	}
	maxIn, totalIn := 0, 0
	for _, c := range inDeg {
		totalIn += c
		if c > maxIn {
			maxIn = c
		}
	}
	if len(inDeg) == 0 {
		t.Fatal("no citations generated")
	}
	meanIn := float64(totalIn) / float64(len(inDeg))
	if float64(maxIn) < 2*meanIn {
		t.Errorf("citations not skewed: max %d vs mean %.1f", maxIn, meanIn)
	}
}

func TestUniqueAuthorNames(t *testing.T) {
	db := generateSmall(t)
	authors, _ := db.Table("Authors")
	seen := map[string]bool{}
	for _, r := range authors.Rows() {
		n := r[1].AsString()
		if seen[n] {
			t.Fatalf("duplicate author name %q", n)
		}
		seen[n] = true
	}
}

func TestGenerateTranslated(t *testing.T) {
	tr, err := GenerateTranslated(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Schema.NodeType("Papers") == nil || tr.Schema.NodeType("Papers: year") == nil {
		t.Error("expected node types missing")
	}
	stats := tr.Instance.ComputeStats()
	if stats.NodesByType["Papers"] != 300 {
		t.Errorf("paper nodes = %d", stats.NodesByType["Papers"])
	}
	// The translated graph answers a Figure 1-style query.
	p, err := etable.Initiate(tr.Schema, "Papers")
	if err != nil {
		t.Fatal(err)
	}
	p, err = etable.Add(tr.Schema, p, "Papers→Paper_Keywords: keyword")
	if err != nil {
		t.Fatal(err)
	}
	p, err = etable.Select(p, "keyword like '%user%'")
	if err != nil {
		t.Fatal(err)
	}
	p, err = etable.Shift(p, "Papers")
	if err != nil {
		t.Fatal(err)
	}
	res, err := etable.Execute(tr.Instance, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() == 0 {
		t.Error("no papers match %user% keywords; vocabulary broken")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := PaperScaleConfig()
	cfg.fill()
	if cfg.Papers != 38000 || cfg.Authors != 19000 || cfg.YearMin != 2000 {
		t.Errorf("defaults = %+v", cfg)
	}
	small := Config{Papers: 4}
	small.fill()
	if small.Authors != 10 || small.Institutions > small.Authors {
		t.Errorf("small defaults = %+v", small)
	}
}
