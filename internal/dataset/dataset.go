// Package dataset generates the synthetic stand-in for the paper's
// evaluation corpus: an academic publication database "collected from
// DBLP and the ACM Digital Library" with about 38,000 papers from 19 top
// conferences in databases, data mining, and HCI since 2000, stored in
// the 7-relation schema of Figure 3 (see DESIGN.md for the substitution
// rationale).
//
// Generation is deterministic given a seed. Cardinality shapes follow
// the real corpus where they matter to ETable: multi-author papers
// (1–8 authors, preferentially attached so productivity is skewed),
// citation lists biased toward already-cited papers (skewed in-degree,
// like the counts visible in the paper's Figure 1), and Zipf-ish keyword
// frequency.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/relational"
	"repro/internal/translate"
	"repro/internal/value"
)

type area uint8

const (
	areaDB area = iota
	areaDM
	areaHCI
)

type conferenceSeed struct {
	Acronym string
	Title   string
	Area    area
	Weight  float64
}

// Config parameterizes generation. Zero values take defaults matching
// the paper's scale.
type Config struct {
	// Papers is the total paper count (default 38000).
	Papers int
	// Authors is the author pool size (default Papers/2).
	Authors int
	// Institutions is the institution count (default 400).
	Institutions int
	// Seed drives the deterministic RNG (default 1).
	Seed int64
	// YearMin and YearMax bound publication years (defaults 2000, 2015).
	YearMin, YearMax int
	// MaxAuthorsPerPaper bounds author lists (default 8).
	MaxAuthorsPerPaper int
	// MaxReferences bounds per-paper citation lists (default 25).
	MaxReferences int
	// MaxKeywords bounds per-paper keyword lists (default 10).
	MaxKeywords int
}

func (c *Config) fill() {
	if c.Papers == 0 {
		c.Papers = 38000
	}
	if c.Authors == 0 {
		c.Authors = c.Papers / 2
		if c.Authors < 10 {
			c.Authors = 10
		}
	}
	if c.Institutions == 0 {
		c.Institutions = 400
		if c.Institutions > c.Authors {
			c.Institutions = (c.Authors + 1) / 2
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.YearMin == 0 {
		c.YearMin = 2000
	}
	if c.YearMax == 0 {
		c.YearMax = 2015
	}
	if c.MaxAuthorsPerPaper == 0 {
		c.MaxAuthorsPerPaper = 8
	}
	if c.MaxReferences == 0 {
		c.MaxReferences = 25
	}
	if c.MaxKeywords == 0 {
		c.MaxKeywords = 10
	}
}

// Generate builds the Figure 3 relational database.
func Generate(cfg Config) (*relational.DB, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := relational.NewDB()
	if err := createSchema(db); err != nil {
		return nil, err
	}

	confs, _ := db.Table("Conferences")
	insts, _ := db.Table("Institutions")
	authors, _ := db.Table("Authors")
	papers, _ := db.Table("Papers")
	paperAuthors, _ := db.Table("Paper_Authors")
	paperRefs, _ := db.Table("Paper_References")
	paperKeywords, _ := db.Table("Paper_Keywords")

	// Conferences: the fixed pool of 19.
	confWeights := make([]float64, len(conferencePool))
	totalW := 0.0
	for i, c := range conferencePool {
		if _, err := confs.InsertValues(value.Int(int64(i+1)), value.Str(c.Acronym), value.Str(c.Title)); err != nil {
			return nil, err
		}
		confWeights[i] = c.Weight
		totalW += c.Weight
	}

	// Institutions with weighted countries.
	countryOf := make([]string, cfg.Institutions)
	countryTotal := 0
	for _, cw := range countryWeights {
		countryTotal += cw.Weight
	}
	seenInstNames := map[string]bool{}
	for i := 0; i < cfg.Institutions; i++ {
		name := ""
		for {
			tmpl := institutionTemplates[rng.Intn(len(institutionTemplates))]
			place := institutionPlaces[rng.Intn(len(institutionPlaces))]
			name = fmt.Sprintf(tmpl, place)
			if !seenInstNames[name] {
				break
			}
			name = fmt.Sprintf("%s %d", name, i)
			if !seenInstNames[name] {
				break
			}
		}
		seenInstNames[name] = true
		r := rng.Intn(countryTotal)
		country := countryWeights[len(countryWeights)-1].Country
		for _, cw := range countryWeights {
			if r < cw.Weight {
				country = cw.Country
				break
			}
			r -= cw.Weight
		}
		countryOf[i] = country
		if _, err := insts.InsertValues(value.Int(int64(i+1)), value.Str(name), value.Str(country)); err != nil {
			return nil, err
		}
	}

	// Authors with unique names, assigned to institutions.
	seenAuthors := map[string]bool{}
	for i := 0; i < cfg.Authors; i++ {
		name := ""
		for {
			name = firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
			if !seenAuthors[name] {
				break
			}
			name = fmt.Sprintf("%s %c.", name, 'A'+rng.Intn(26))
			if !seenAuthors[name] {
				break
			}
			name = fmt.Sprintf("%s %d", name, i)
			break
		}
		seenAuthors[name] = true
		inst := rng.Intn(cfg.Institutions) + 1
		if _, err := authors.InsertValues(value.Int(int64(i+1)), value.Str(name), value.Int(int64(inst))); err != nil {
			return nil, err
		}
	}

	// Papers. Years grow mildly over time; conferences chosen by weight.
	keywordPool := func(a area) []string { return areaKeywords[a] }
	pickConf := func() int {
		r := rng.Float64() * totalW
		for i, w := range confWeights {
			if r < w {
				return i
			}
			r -= w
		}
		return len(confWeights) - 1
	}
	years := cfg.YearMax - cfg.YearMin + 1
	paperYear := make([]int, cfg.Papers)
	paperConfArea := make([]area, cfg.Papers)
	seenTitles := map[string]bool{}
	for i := 0; i < cfg.Papers; i++ {
		ci := pickConf()
		seed := conferencePool[ci]
		// Triangular-ish year distribution favoring recent years.
		y := cfg.YearMin + maxInt(rng.Intn(years), rng.Intn(years))
		paperYear[i] = y
		paperConfArea[i] = seed.Area

		kws := keywordPool(seed.Area)
		title := fmt.Sprintf(titlePatterns[rng.Intn(len(titlePatterns))],
			titleNouns[rng.Intn(len(titleNouns))], kws[rng.Intn(len(kws))])
		if seenTitles[title] {
			title = fmt.Sprintf("%s (part %d)", title, i)
		}
		seenTitles[title] = true
		pageStart := 1 + rng.Intn(1400)
		pageEnd := pageStart + 3 + rng.Intn(12)
		if _, err := papers.InsertValues(
			value.Int(int64(i+1)), value.Int(int64(ci+1)), value.Str(title),
			value.Int(int64(y)), value.Int(int64(pageStart)), value.Int(int64(pageEnd)),
		); err != nil {
			return nil, err
		}
	}

	// Paper authors: preferential attachment over a per-paper sample.
	authorWeight := make([]int, cfg.Authors+1)
	for i := range authorWeight {
		authorWeight[i] = 1
	}
	for p := 1; p <= cfg.Papers; p++ {
		n := 1 + rng.Intn(cfg.MaxAuthorsPerPaper)
		chosen := map[int]bool{}
		for o := 1; o <= n; o++ {
			a := 0
			for tries := 0; tries < 12; tries++ {
				// Preferential: sample two, keep the heavier.
				c1, c2 := 1+rng.Intn(cfg.Authors), 1+rng.Intn(cfg.Authors)
				a = c1
				if authorWeight[c2] > authorWeight[c1] {
					a = c2
				}
				if !chosen[a] {
					break
				}
			}
			if chosen[a] {
				continue
			}
			chosen[a] = true
			authorWeight[a]++
			if _, err := paperAuthors.InsertValues(
				value.Int(int64(p)), value.Int(int64(a)), value.Int(int64(o)),
			); err != nil {
				return nil, err
			}
		}
	}

	// Citations: papers cite strictly older papers, preferentially ones
	// already cited (rich-get-richer in-degree).
	citeWeight := make([]int, cfg.Papers+1)
	for i := range citeWeight {
		citeWeight[i] = 1
	}
	for p := 2; p <= cfg.Papers; p++ {
		n := rng.Intn(cfg.MaxReferences + 1)
		if n > p-1 {
			n = p - 1
		}
		chosen := map[int]bool{}
		for k := 0; k < n; k++ {
			c1, c2 := 1+rng.Intn(p-1), 1+rng.Intn(p-1)
			ref := c1
			if citeWeight[c2] > citeWeight[c1] {
				ref = c2
			}
			if chosen[ref] {
				continue
			}
			chosen[ref] = true
			citeWeight[ref]++
			if _, err := paperRefs.InsertValues(value.Int(int64(p)), value.Int(int64(ref))); err != nil {
				return nil, err
			}
		}
	}

	// Keywords: area vocabulary plus shared tail, Zipf-ish via the
	// two-sample trick over a frequency-ordered vocabulary.
	for p := 1; p <= cfg.Papers; p++ {
		vocab := append(append([]string{}, keywordPool(paperConfArea[p-1])...), tailKeywords...)
		n := 3 + rng.Intn(cfg.MaxKeywords-2)
		chosen := map[string]bool{}
		for k := 0; k < n; k++ {
			i1, i2 := rng.Intn(len(vocab)), rng.Intn(len(vocab))
			kw := vocab[minInt(i1, i2)] // earlier vocabulary entries more frequent
			if chosen[kw] {
				continue
			}
			chosen[kw] = true
			if _, err := paperKeywords.InsertValues(value.Int(int64(p)), value.Str(kw)); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// createSchema creates the Figure 3 relations.
func createSchema(db *relational.DB) error {
	schemas := []relational.Schema{
		{
			Name: "Conferences",
			Columns: []relational.Column{
				{Name: "id", Type: value.KindInt},
				{Name: "acronym", Type: value.KindString},
				{Name: "title", Type: value.KindString},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "Institutions",
			Columns: []relational.Column{
				{Name: "id", Type: value.KindInt},
				{Name: "name", Type: value.KindString},
				{Name: "country", Type: value.KindString},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "Authors",
			Columns: []relational.Column{
				{Name: "id", Type: value.KindInt},
				{Name: "name", Type: value.KindString},
				{Name: "institution_id", Type: value.KindInt},
			},
			PrimaryKey: []string{"id"},
			ForeignKeys: []relational.ForeignKey{
				{Col: "institution_id", RefTable: "Institutions", RefCol: "id"},
			},
		},
		{
			Name: "Papers",
			Columns: []relational.Column{
				{Name: "id", Type: value.KindInt},
				{Name: "conference_id", Type: value.KindInt},
				{Name: "title", Type: value.KindString},
				{Name: "year", Type: value.KindInt},
				{Name: "page_start", Type: value.KindInt},
				{Name: "page_end", Type: value.KindInt},
			},
			PrimaryKey: []string{"id"},
			ForeignKeys: []relational.ForeignKey{
				{Col: "conference_id", RefTable: "Conferences", RefCol: "id"},
			},
		},
		{
			Name: "Paper_Authors",
			Columns: []relational.Column{
				{Name: "paper_id", Type: value.KindInt},
				{Name: "author_id", Type: value.KindInt},
				{Name: "order", Type: value.KindInt},
			},
			PrimaryKey: []string{"paper_id", "author_id"},
			ForeignKeys: []relational.ForeignKey{
				{Col: "paper_id", RefTable: "Papers", RefCol: "id"},
				{Col: "author_id", RefTable: "Authors", RefCol: "id"},
			},
		},
		{
			Name: "Paper_References",
			Columns: []relational.Column{
				{Name: "paper_id", Type: value.KindInt},
				{Name: "ref_paper_id", Type: value.KindInt},
			},
			PrimaryKey: []string{"paper_id", "ref_paper_id"},
			ForeignKeys: []relational.ForeignKey{
				{Col: "paper_id", RefTable: "Papers", RefCol: "id"},
				{Col: "ref_paper_id", RefTable: "Papers", RefCol: "id"},
			},
		},
		{
			Name: "Paper_Keywords",
			Columns: []relational.Column{
				{Name: "paper_id", Type: value.KindInt},
				{Name: "keyword", Type: value.KindString},
			},
			PrimaryKey: []string{"paper_id", "keyword"},
			ForeignKeys: []relational.ForeignKey{
				{Col: "paper_id", RefTable: "Papers", RefCol: "id"},
			},
		},
	}
	for _, s := range schemas {
		if _, err := db.CreateTable(s); err != nil {
			return err
		}
	}
	return nil
}

// GenerateTranslated generates the database and runs the Appendix A
// translation with the evaluation's categorical attributes.
func GenerateTranslated(cfg Config) (*translate.Result, error) {
	db, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	return translate.Translate(db, translate.Options{
		CategoricalAttrs: []string{"Papers.year", "Institutions.country"},
	})
}

// SmallConfig returns a configuration sized for tests: a few hundred
// papers, generated in milliseconds.
func SmallConfig() Config {
	return Config{Papers: 300, Authors: 150, Institutions: 40, Seed: 7}
}

// PaperScaleConfig returns the configuration matching the paper's corpus
// (~38k papers, 19 conferences, since 2000).
func PaperScaleConfig() Config { return Config{} }
