package dataset

// Name pools for the synthetic academic database. The generator combines
// them deterministically; they only need enough variety that labels,
// filters, and LIKE patterns behave realistically.

var conferencePool = []conferenceSeed{
	// Databases.
	{"SIGMOD", "ACM SIGMOD Conference on Management of Data", areaDB, 1.6},
	{"VLDB", "International Conference on Very Large Data Bases", areaDB, 1.5},
	{"ICDE", "IEEE International Conference on Data Engineering", areaDB, 1.4},
	{"PODS", "ACM Symposium on Principles of Database Systems", areaDB, 0.6},
	{"EDBT", "International Conference on Extending Database Technology", areaDB, 0.8},
	{"CIKM", "ACM Conference on Information and Knowledge Management", areaDB, 1.2},
	{"ICDT", "International Conference on Database Theory", areaDB, 0.5},
	// Data mining.
	{"KDD", "ACM SIGKDD Conference on Knowledge Discovery and Data Mining", areaDM, 1.5},
	{"ICDM", "IEEE International Conference on Data Mining", areaDM, 1.1},
	{"SDM", "SIAM International Conference on Data Mining", areaDM, 0.7},
	{"WSDM", "ACM Conference on Web Search and Data Mining", areaDM, 0.6},
	{"WWW", "International World Wide Web Conference", areaDM, 1.3},
	{"RECSYS", "ACM Conference on Recommender Systems", areaDM, 0.5},
	// Human-computer interaction.
	{"CHI", "ACM Conference on Human Factors in Computing Systems", areaHCI, 1.7},
	{"UIST", "ACM Symposium on User Interface Software and Technology", areaHCI, 0.7},
	{"CSCW", "ACM Conference on Computer-Supported Cooperative Work", areaHCI, 0.8},
	{"IUI", "International Conference on Intelligent User Interfaces", areaHCI, 0.6},
	{"VIS", "IEEE Visualization Conference", areaHCI, 0.9},
	{"AVI", "International Working Conference on Advanced Visual Interfaces", areaHCI, 0.4},
}

var firstNames = []string{
	"James", "Mary", "Wei", "Li", "Minsuk", "Hiroshi", "Yuki", "Anna",
	"Peter", "Elena", "Rahul", "Priya", "Carlos", "Sofia", "Jan", "Eva",
	"Mohamed", "Fatima", "Ivan", "Olga", "Chen", "Xin", "Jun", "Sang",
	"Hyun", "Max", "Clara", "Lucas", "Marie", "Paul", "Laura", "David",
	"Sarah", "Michael", "Jennifer", "Thomas", "Susan", "Robert", "Linda",
	"Daniel", "Karen", "Joseph", "Nancy", "Matthew", "Betty", "Andrew",
	"Helen", "Joshua", "Sandra", "Kevin", "Donna", "Brian", "Ruth",
	"George", "Sharon", "Edward", "Michelle", "Ronald", "Emily", "Anthony",
	"Kimberly", "Arnab", "Magda", "Divesh", "Surajit", "Jiawei", "Christos",
	"Jure", "Ben", "Maneesh", "Jeffrey", "Samuel", "Alon", "Joseph",
	"Hector", "Rakesh", "Raghu", "Gerhard", "Stefan", "Martin", "Volker",
}

var lastNames = []string{
	"Smith", "Johnson", "Wang", "Li", "Zhang", "Chen", "Liu", "Kim",
	"Lee", "Park", "Choi", "Kahng", "Tanaka", "Suzuki", "Sato", "Garcia",
	"Martinez", "Lopez", "Gonzalez", "Mueller", "Schmidt", "Schneider",
	"Fischer", "Weber", "Meyer", "Ivanov", "Petrov", "Singh", "Kumar",
	"Patel", "Shah", "Nguyen", "Tran", "Pham", "Brown", "Davis", "Miller",
	"Wilson", "Moore", "Taylor", "Anderson", "Thomas", "Jackson", "White",
	"Harris", "Martin", "Thompson", "Young", "King", "Wright", "Hill",
	"Green", "Adams", "Baker", "Nelson", "Carter", "Mitchell", "Roberts",
	"Turner", "Phillips", "Campbell", "Parker", "Evans", "Edwards",
	"Collins", "Stewart", "Sanchez", "Morris", "Rogers", "Reed", "Cook",
	"Nandi", "Jagadish", "Madden", "Stonebraker", "Chaudhuri", "Srivastava",
	"Halevy", "Widom", "Navathe", "Stasko", "Chau", "Han", "Leskovec",
}

var institutionTemplates = []string{
	"Univ. of %s", "%s University", "%s Institute of Technology",
	"%s State University", "Technical Univ. of %s", "%s Research Institute",
	"National Univ. of %s",
}

var institutionPlaces = []string{
	"Michigan", "Washington", "California", "Texas", "Illinois",
	"Wisconsin", "Maryland", "Georgia", "Massachusetts", "Stanford",
	"Carnegie", "Cornell", "Princeton", "Columbia", "Toronto", "Waterloo",
	"British Columbia", "Cambridge", "Oxford", "Edinburgh", "Munich",
	"Berlin", "Aachen", "Zurich", "Lausanne", "Amsterdam", "Paris",
	"Grenoble", "Milan", "Rome", "Madrid", "Barcelona", "Stockholm",
	"Helsinki", "Copenhagen", "Vienna", "Seoul", "Daejeon", "Pohang",
	"Tokyo", "Kyoto", "Osaka", "Beijing", "Shanghai", "Tsinghua", "Hong Kong", "Singapore", "Melbourne", "Sydney", "Tel Aviv", "Haifa",
	"Bangalore", "Mumbai", "Delhi", "Sao Paulo", "Santiago",
}

// countryWeights skews institution countries the way conference author
// rosters do; "South Korea" is kept prominent because the paper's tasks
// filter on it.
var countryWeights = []struct {
	Country string
	Weight  int
}{
	{"USA", 34}, {"China", 12}, {"Germany", 8}, {"South Korea", 7},
	{"UK", 6}, {"Canada", 5}, {"Japan", 5}, {"France", 4}, {"India", 4},
	{"Italy", 3}, {"Netherlands", 3}, {"Switzerland", 3}, {"Australia", 2},
	{"Singapore", 2}, {"Israel", 2}, {"Brazil", 1}, {"Spain", 1},
	{"Sweden", 1}, {"Austria", 1},
}

// keyword vocabulary per research area; shared tail keywords follow.
var areaKeywords = map[area][]string{
	areaDB: {
		"query processing", "query optimization", "indexing", "transactions",
		"concurrency control", "distributed databases", "column stores",
		"schema design", "data integration", "data cleaning", "provenance",
		"stream processing", "graph databases", "spatial data", "joins",
		"materialized views", "database usability", "keyword search",
		"user interface", "end-user queries", "user-defined functions",
		"approximate query", "main memory databases", "parallel databases",
		"recovery", "storage management", "benchmarking", "sql",
	},
	areaDM: {
		"clustering", "classification", "frequent patterns", "outlier detection",
		"recommendation", "collaborative filtering", "social networks",
		"graph mining", "text mining", "topic models", "feature selection",
		"matrix factorization", "anomaly detection", "link prediction",
		"web mining", "user modeling", "large-scale learning", "sampling",
		"dimensionality reduction", "time series", "pattern mining",
	},
	areaHCI: {
		"user interface", "usability", "user study", "visualization",
		"interaction design", "direct manipulation", "touch input",
		"information visualization", "visual analytics", "crowdsourcing",
		"accessibility", "end-user programming", "gesture input",
		"user experience", "eye tracking", "collaborative work",
		"mobile interfaces", "design", "human factors", "user feedback",
	},
}

var tailKeywords = []string{
	"performance", "scalability", "algorithms", "experimentation",
	"measurement", "theory", "systems", "evaluation", "optimization",
	"machine learning", "privacy", "security", "reliability", "economics",
}

// titlePatterns produce paper titles; %s slots are filled with keywords
// or phrases.
var titlePatterns = []string{
	"%s for %s", "Efficient %s in %s", "Towards %s: a %s approach",
	"Scalable %s with %s", "Interactive %s for %s", "On the %s of %s",
	"%s: a system for %s", "Mining %s from %s", "Learning %s for %s",
	"Fast %s over %s", "Adaptive %s in %s", "A study of %s in %s",
	"Rethinking %s for %s", "%s meets %s", "Automating %s via %s",
}

var titleNouns = []string{
	"query answering", "index structures", "data exploration",
	"user interfaces", "schema mapping", "join processing",
	"recommendation models", "graph analytics", "stream joins",
	"visual queries", "crowd workflows", "interactive browsing",
	"provenance tracking", "keyword search", "result ranking",
	"data summarization", "entity resolution", "workload tuning",
	"skew handling", "cache management", "sampling strategies",
}
