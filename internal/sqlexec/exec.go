package sqlexec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/relational"
	"repro/internal/sqlparse"
	"repro/internal/value"
)

// ExecSQL parses and executes a SQL SELECT statement against db.
func ExecSQL(db *relational.DB, src string) (*relational.Rel, error) {
	stmt, err := sqlparse.Parse(src)
	if err != nil {
		return nil, err
	}
	return Exec(db, stmt)
}

// Exec executes a parsed SELECT statement against db.
func Exec(db *relational.DB, stmt *sqlparse.SelectStmt) (*relational.Rel, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("sqlexec: statement has no FROM clause")
	}
	p, err := newPlanner(db, stmt)
	if err != nil {
		return nil, err
	}
	source, residual, err := p.buildJoined(stmt.Where, stmt.Joins)
	if err != nil {
		return nil, err
	}
	if len(residual) > 0 {
		return nil, fmt.Errorf("sqlexec: cannot evaluate predicate %s in WHERE", residual[0])
	}

	if stmt.HasAggregates() {
		source, err = groupAndHave(source, stmt)
		if err != nil {
			return nil, err
		}
	} else if stmt.Having != nil {
		return nil, fmt.Errorf("sqlexec: HAVING without GROUP BY or aggregates")
	}

	out, srcRows, err := project(source, stmt)
	if err != nil {
		return nil, err
	}

	if stmt.Distinct {
		out, srcRows = distinctParallel(out, srcRows)
	}

	if len(stmt.OrderBy) > 0 {
		if err := orderParallel(out, srcRows, source, stmt.OrderBy); err != nil {
			return nil, err
		}
	}

	if stmt.Limit >= 0 || stmt.Offset > 0 {
		out = relational.Limit(out, stmt.Offset, stmt.Limit)
	}
	return out, nil
}

// keyColRef derives the output column reference for a GROUP BY key.
func keyColRef(e expr.Expr) relational.ColRef {
	if c, ok := e.(expr.Col); ok {
		if i := strings.LastIndexByte(c.Name, '.'); i >= 0 {
			return relational.ColRef{Table: c.Name[:i], Name: c.Name[i+1:]}
		}
		return relational.ColRef{Name: c.Name}
	}
	return relational.ColRef{Name: e.String()}
}

// groupAndHave groups the source relation per the statement, computes
// every aggregate under its canonical name, and applies HAVING.
func groupAndHave(source *relational.Rel, stmt *sqlparse.SelectStmt) (*relational.Rel, error) {
	aggCalls := stmt.Aggregates()
	aggs := make([]relational.Aggregate, len(aggCalls))
	for i, a := range aggCalls {
		aggs[i] = relational.Aggregate{Func: toRelAgg(a.Func), Arg: a.Arg, As: a.Name()}
	}
	keyNames := make([]string, len(stmt.GroupBy))
	for i, k := range stmt.GroupBy {
		keyNames[i] = k.String()
	}
	grouped, err := relational.GroupBy(source, stmt.GroupBy, keyNames, aggs)
	if err != nil {
		return nil, err
	}
	// Restore table qualifiers on key columns so that both bare and
	// qualified references resolve downstream.
	for i, k := range stmt.GroupBy {
		grouped.Cols[i] = keyColRef(k)
	}
	if stmt.Having != nil {
		grouped, err = relational.Select(grouped, stmt.Having)
		if err != nil {
			return nil, err
		}
	}
	return grouped, nil
}

func toRelAgg(f sqlparse.AggFunc) relational.AggFunc {
	switch f {
	case sqlparse.AggCount:
		return relational.AggCount
	case sqlparse.AggCountDistinct:
		return relational.AggCountDistinct
	case sqlparse.AggSum:
		return relational.AggSum
	case sqlparse.AggAvg:
		return relational.AggAvg
	case sqlparse.AggMin:
		return relational.AggMin
	default:
		return relational.AggMax
	}
}

// project evaluates the SELECT list over source, returning the projected
// relation and, in parallel, the source row backing each output row (for
// ORDER BY references to non-projected columns).
func project(source *relational.Rel, stmt *sqlparse.SelectStmt) (*relational.Rel, []relational.Row, error) {
	out := &relational.Rel{}
	type colPlan struct {
		copyIdx int       // >= 0: copy source column
		eval    expr.Expr // else: evaluate
	}
	var plans []colPlan

	for _, item := range stmt.Items {
		switch {
		case item.Star:
			for ci, c := range source.Cols {
				if item.StarTable != "" && c.Table != item.StarTable {
					continue
				}
				out.Cols = append(out.Cols, c)
				plans = append(plans, colPlan{copyIdx: ci})
			}
			if item.StarTable != "" && len(plans) == 0 {
				return nil, nil, fmt.Errorf("sqlexec: %s.* matches no columns", item.StarTable)
			}
		case item.Agg != nil:
			name := item.Agg.Name()
			ci := source.ColIndex(name)
			if ci < 0 {
				return nil, nil, fmt.Errorf("sqlexec: aggregate %s not materialized", name)
			}
			ref := relational.ColRef{Name: name}
			if item.Alias != "" {
				ref = relational.ColRef{Name: item.Alias}
			}
			out.Cols = append(out.Cols, ref)
			plans = append(plans, colPlan{copyIdx: ci})
		default:
			ref := relational.ColRef{Name: item.Expr.String()}
			if c, ok := item.Expr.(expr.Col); ok {
				ref = keyColRefFromName(c.Name)
			}
			if item.Alias != "" {
				ref = relational.ColRef{Name: item.Alias}
			}
			out.Cols = append(out.Cols, ref)
			// Fast path: direct column copy.
			if c, ok := item.Expr.(expr.Col); ok {
				if ci := source.ColIndex(c.Name); ci >= 0 {
					plans = append(plans, colPlan{copyIdx: ci})
					continue
				}
			}
			plans = append(plans, colPlan{copyIdx: -1, eval: item.Expr})
		}
	}

	srcRows := make([]relational.Row, 0, len(source.Rows))
	for _, row := range source.Rows {
		outRow := make(relational.Row, len(plans))
		env := source.Env(row)
		for i, pl := range plans {
			if pl.copyIdx >= 0 {
				outRow[i] = row[pl.copyIdx]
				continue
			}
			v, err := pl.eval.Eval(env)
			if err != nil {
				return nil, nil, err
			}
			outRow[i] = v
		}
		out.Rows = append(out.Rows, outRow)
		srcRows = append(srcRows, row)
	}
	return out, srcRows, nil
}

func keyColRefFromName(name string) relational.ColRef {
	if i := strings.LastIndexByte(name, '.'); i >= 0 && !strings.ContainsRune(name, '(') {
		return relational.ColRef{Table: name[:i], Name: name[i+1:]}
	}
	return relational.ColRef{Name: name}
}

// distinctParallel removes duplicate output rows keeping srcRows aligned.
func distinctParallel(out *relational.Rel, srcRows []relational.Row) (*relational.Rel, []relational.Row) {
	seen := make(map[string]bool, len(out.Rows))
	dd := &relational.Rel{Cols: out.Cols}
	var ds []relational.Row
	for i, row := range out.Rows {
		k := relational.RowKey(row)
		if seen[k] {
			continue
		}
		seen[k] = true
		dd.Rows = append(dd.Rows, row)
		ds = append(ds, srcRows[i])
	}
	return dd, ds
}

// fallbackEnv resolves names first against the projected row, then the
// source row, so ORDER BY can reference aliases and dropped columns.
type fallbackEnv struct {
	primary, secondary expr.Env
}

// Lookup implements expr.Env.
func (f fallbackEnv) Lookup(name string) (value.V, bool) {
	if v, ok := f.primary.Lookup(name); ok {
		return v, true
	}
	return f.secondary.Lookup(name)
}

// orderParallel sorts out (and srcRows) in place by the ORDER BY keys.
func orderParallel(out *relational.Rel, srcRows []relational.Row, source *relational.Rel, keys []sqlparse.OrderItem) error {
	type keyed struct {
		row  relational.Row
		src  relational.Row
		vals []value.V
	}
	rows := make([]keyed, len(out.Rows))
	for i := range out.Rows {
		env := fallbackEnv{primary: out.Env(out.Rows[i]), secondary: source.Env(srcRows[i])}
		vals := make([]value.V, len(keys))
		for ki, k := range keys {
			e := k.Expr
			if k.Agg != nil {
				e = expr.Col{Name: k.Agg.Name()}
			}
			v, err := e.Eval(env)
			if err != nil {
				return err
			}
			vals[ki] = v
		}
		rows[i] = keyed{row: out.Rows[i], src: srcRows[i], vals: vals}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for ki := range keys {
			d := value.Compare(rows[i].vals[ki], rows[j].vals[ki])
			if d == 0 {
				continue
			}
			if keys[ki].Desc {
				return d > 0
			}
			return d < 0
		}
		return false
	})
	for i, kr := range rows {
		out.Rows[i] = kr.row
		srcRows[i] = kr.src
	}
	return nil
}
