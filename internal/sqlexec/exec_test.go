package sqlexec

import (
	"testing"

	"repro/internal/relational"
	"repro/internal/value"
)

// miniDB builds a small academic database following the paper's Figure 3
// schema (subset): Conferences, Papers, Authors, Paper_Authors.
func miniDB(t testing.TB) *relational.DB {
	t.Helper()
	db := relational.NewDB()
	confs := db.MustCreateTable(relational.Schema{
		Name: "Conferences",
		Columns: []relational.Column{
			{Name: "id", Type: value.KindInt},
			{Name: "acronym", Type: value.KindString},
		},
		PrimaryKey: []string{"id"},
	})
	papers := db.MustCreateTable(relational.Schema{
		Name: "Papers",
		Columns: []relational.Column{
			{Name: "id", Type: value.KindInt},
			{Name: "conference_id", Type: value.KindInt},
			{Name: "title", Type: value.KindString},
			{Name: "year", Type: value.KindInt},
		},
		PrimaryKey: []string{"id"},
		ForeignKeys: []relational.ForeignKey{
			{Col: "conference_id", RefTable: "Conferences", RefCol: "id"},
		},
	})
	authors := db.MustCreateTable(relational.Schema{
		Name: "Authors",
		Columns: []relational.Column{
			{Name: "id", Type: value.KindInt},
			{Name: "name", Type: value.KindString},
		},
		PrimaryKey: []string{"id"},
	})
	pa := db.MustCreateTable(relational.Schema{
		Name: "Paper_Authors",
		Columns: []relational.Column{
			{Name: "paper_id", Type: value.KindInt},
			{Name: "author_id", Type: value.KindInt},
		},
		PrimaryKey: []string{"paper_id", "author_id"},
		ForeignKeys: []relational.ForeignKey{
			{Col: "paper_id", RefTable: "Papers", RefCol: "id"},
			{Col: "author_id", RefTable: "Authors", RefCol: "id"},
		},
	})

	for _, c := range []struct {
		id int64
		ac string
	}{{1, "SIGMOD"}, {2, "KDD"}, {3, "CHI"}} {
		confs.InsertValues(value.Int(c.id), value.Str(c.ac))
	}
	for _, p := range []struct {
		id, conf int64
		title    string
		year     int64
	}{
		{1, 1, "Making database systems usable", 2007},
		{2, 1, "SkewTune", 2012},
		{3, 2, "Collaborative filtering", 2009},
		{4, 3, "NetLens", 2007},
		{5, 1, "DataPlay", 2012},
		{6, 2, "GraphTrail views", 2012},
	} {
		papers.InsertValues(value.Int(p.id), value.Int(p.conf), value.Str(p.title), value.Int(p.year))
	}
	for _, a := range []struct {
		id   int64
		name string
	}{
		{1, "Jagadish"}, {2, "Nandi"}, {3, "Madden"}, {4, "Koren"},
	} {
		authors.InsertValues(value.Int(a.id), value.Str(a.name))
	}
	for _, l := range [][2]int64{
		{1, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 1}, {5, 2}, {5, 1}, {6, 3},
	} {
		pa.InsertValues(value.Int(l[0]), value.Int(l[1]))
	}
	if err := db.CheckForeignKeys(); err != nil {
		t.Fatal(err)
	}
	return db
}

func mustExec(t *testing.T, db *relational.DB, sql string) *relational.Rel {
	t.Helper()
	r, err := ExecSQL(db, sql)
	if err != nil {
		t.Fatalf("ExecSQL(%q): %v", sql, err)
	}
	return r
}

func TestSimpleScanFilter(t *testing.T) {
	db := miniDB(t)
	r := mustExec(t, db, "SELECT title FROM Papers WHERE year = 2012")
	if len(r.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(r.Rows))
	}
	if len(r.Cols) != 1 || r.Cols[0].Name != "title" {
		t.Errorf("cols = %v", r.Cols)
	}
}

func TestStarSelect(t *testing.T) {
	db := miniDB(t)
	r := mustExec(t, db, "SELECT * FROM Conferences")
	if len(r.Rows) != 3 || len(r.Cols) != 2 {
		t.Errorf("shape = %dx%d", len(r.Rows), len(r.Cols))
	}
}

func TestCommaJoinWithWhere(t *testing.T) {
	db := miniDB(t)
	r := mustExec(t, db, `SELECT Papers.title FROM Papers, Conferences
		WHERE Papers.conference_id = Conferences.id AND Conferences.acronym = 'SIGMOD'`)
	if len(r.Rows) != 3 {
		t.Errorf("SIGMOD papers = %d, want 3", len(r.Rows))
	}
}

func TestExplicitJoin(t *testing.T) {
	db := miniDB(t)
	r := mustExec(t, db, `SELECT p.title, c.acronym FROM Papers p
		JOIN Conferences c ON p.conference_id = c.id WHERE c.acronym = 'KDD'`)
	if len(r.Rows) != 2 {
		t.Errorf("KDD papers = %d, want 2", len(r.Rows))
	}
	if r.Rows[0][1].AsString() != "KDD" {
		t.Errorf("row = %v", r.Rows[0])
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := miniDB(t)
	// All papers written by Jagadish.
	r := mustExec(t, db, `SELECT Papers.title FROM Papers, Paper_Authors, Authors
		WHERE Papers.id = Paper_Authors.paper_id
		AND Paper_Authors.author_id = Authors.id
		AND Authors.name = 'Jagadish'`)
	if len(r.Rows) != 3 {
		t.Errorf("Jagadish papers = %d, want 3", len(r.Rows))
	}
}

func TestJoinDuplication(t *testing.T) {
	db := miniDB(t)
	// The duplication problem the paper's introduction describes: a paper
	// joined with its authors appears once per author.
	r := mustExec(t, db, `SELECT Papers.title, Authors.name
		FROM Papers, Paper_Authors, Authors
		WHERE Papers.id = Paper_Authors.paper_id
		AND Paper_Authors.author_id = Authors.id
		AND Papers.id = 1`)
	if len(r.Rows) != 2 {
		t.Errorf("paper 1 author rows = %d, want 2 (duplication)", len(r.Rows))
	}
}

func TestGroupByHavingOrder(t *testing.T) {
	db := miniDB(t)
	r := mustExec(t, db, `SELECT Authors.name, COUNT(*) AS n
		FROM Papers, Paper_Authors, Authors
		WHERE Papers.id = Paper_Authors.paper_id
		AND Paper_Authors.author_id = Authors.id
		GROUP BY Authors.name
		ORDER BY COUNT(*) DESC, Authors.name ASC`)
	if len(r.Rows) != 4 {
		t.Fatalf("author groups = %d", len(r.Rows))
	}
	// Jagadish has 3 papers; Madden and Nandi tie at 2 and break by name.
	if r.Rows[0][0].AsString() != "Jagadish" || r.Rows[0][1].AsInt() != 3 {
		t.Errorf("top = %v", r.Rows[0])
	}
	if r.Rows[1][0].AsString() != "Madden" || r.Rows[1][1].AsInt() != 2 {
		t.Errorf("second = %v", r.Rows[1])
	}
	if r.Rows[2][0].AsString() != "Nandi" || r.Rows[2][1].AsInt() != 2 {
		t.Errorf("third = %v", r.Rows[2])
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	db := miniDB(t)
	r := mustExec(t, db, `SELECT conference_id, COUNT(*) AS n FROM Papers
		GROUP BY conference_id HAVING COUNT(*) >= 2`)
	if len(r.Rows) != 2 {
		t.Errorf("groups = %d, want 2", len(r.Rows))
	}
}

func TestHavingOnlyAggregate(t *testing.T) {
	db := miniDB(t)
	// MIN(year) appears only in HAVING; it must still be computed.
	r := mustExec(t, db, `SELECT conference_id FROM Papers
		GROUP BY conference_id HAVING MIN(year) = 2007`)
	if len(r.Rows) != 2 {
		t.Errorf("groups = %d, want 2 (SIGMOD and CHI)", len(r.Rows))
	}
}

func TestGlobalAggregate(t *testing.T) {
	db := miniDB(t)
	r := mustExec(t, db, "SELECT COUNT(*), MIN(year), MAX(year), AVG(year) FROM Papers")
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	row := r.Rows[0]
	if row[0].AsInt() != 6 || row[1].AsInt() != 2007 || row[2].AsInt() != 2012 {
		t.Errorf("aggregates = %v", row)
	}
}

func TestCountDistinct(t *testing.T) {
	db := miniDB(t)
	r := mustExec(t, db, "SELECT COUNT(DISTINCT year) FROM Papers")
	if v, _ := relational.SingleValue(r); v.AsInt() != 3 {
		t.Errorf("distinct years = %v", v)
	}
}

func TestDistinctRows(t *testing.T) {
	db := miniDB(t)
	r := mustExec(t, db, "SELECT DISTINCT year FROM Papers ORDER BY year")
	if len(r.Rows) != 3 || r.Rows[0][0].AsInt() != 2007 {
		t.Errorf("distinct = %v", r.Rows)
	}
}

func TestOrderByNonProjectedColumn(t *testing.T) {
	db := miniDB(t)
	r := mustExec(t, db, "SELECT title FROM Papers ORDER BY year DESC, id ASC LIMIT 1")
	if r.Rows[0][0].AsString() != "SkewTune" {
		t.Errorf("top = %v", r.Rows[0])
	}
}

func TestOrderByAlias(t *testing.T) {
	db := miniDB(t)
	r := mustExec(t, db, `SELECT conference_id AS c, COUNT(*) AS n FROM Papers
		GROUP BY conference_id ORDER BY n DESC LIMIT 1`)
	if r.Rows[0][0].AsInt() != 1 || r.Rows[0][1].AsInt() != 3 {
		t.Errorf("top conf = %v", r.Rows[0])
	}
}

func TestLimitOffset(t *testing.T) {
	db := miniDB(t)
	r := mustExec(t, db, "SELECT id FROM Papers ORDER BY id LIMIT 2 OFFSET 3")
	if len(r.Rows) != 2 || r.Rows[0][0].AsInt() != 4 {
		t.Errorf("limit/offset = %v", r.Rows)
	}
}

func TestExpressionSelect(t *testing.T) {
	db := miniDB(t)
	r := mustExec(t, db, "SELECT year + 1 AS next_year FROM Papers WHERE id = 1")
	if r.Rows[0][0].AsInt() != 2008 {
		t.Errorf("expr = %v", r.Rows[0])
	}
	if r.Cols[0].Name != "next_year" {
		t.Errorf("col name = %v", r.Cols[0])
	}
}

func TestSelfJoinAliases(t *testing.T) {
	db := miniDB(t)
	// Pairs of papers at the same conference, ordered pairs excluded.
	r := mustExec(t, db, `SELECT a.id, b.id FROM Papers a, Papers b
		WHERE a.conference_id = b.conference_id AND a.id < b.id`)
	// SIGMOD has 3 papers → 3 pairs; KDD 2 → 1 pair; CHI 1 → 0.
	if len(r.Rows) != 4 {
		t.Errorf("pairs = %d, want 4", len(r.Rows))
	}
}

func TestCrossJoinFallback(t *testing.T) {
	db := miniDB(t)
	r := mustExec(t, db, "SELECT Conferences.acronym, Authors.name FROM Conferences, Authors")
	if len(r.Rows) != 12 {
		t.Errorf("cross join = %d, want 12", len(r.Rows))
	}
}

func TestThetaJoinPredicate(t *testing.T) {
	db := miniDB(t)
	r := mustExec(t, db, `SELECT Papers.id, Conferences.id FROM Papers, Conferences
		WHERE Papers.conference_id < Conferences.id`)
	// conference_id 1 pairs with confs 2,3; 2 with 3; 3 with none.
	want := 3*2 + 2*1 + 1*1 // papers 1,2,5 (conf 1) ×2 + papers 3,6 (conf 2) ×1 + paper 4 (conf 3) ×0
	_ = want
	if len(r.Rows) != 8 {
		t.Errorf("theta rows = %d, want 8", len(r.Rows))
	}
}

func TestExecErrors(t *testing.T) {
	db := miniDB(t)
	bad := []string{
		"SELECT * FROM Nope",
		"SELECT nope FROM Papers",
		"SELECT id FROM Papers, Authors",                 // ambiguous id
		"SELECT Papers.nope FROM Papers",                 // missing column
		"SELECT * FROM Papers p, Papers p",               // duplicate alias
		"SELECT * FROM Papers WHERE nope.id = 1",         // unknown alias
		"SELECT id FROM Papers HAVING COUNT(*) > 1",      // HAVING w/o aggregate select is fine... but this has agg
		"SELECT q.* FROM Papers p",                       // star alias mismatch
		"SELECT id FROM Papers ORDER BY nope",            // unknown order key
		"SELECT COUNT(*) FROM Papers WHERE count(*) > 1", // agg in WHERE
	}
	for _, src := range bad {
		if _, err := ExecSQL(db, src); err == nil {
			t.Errorf("ExecSQL(%q) should fail", src)
		}
	}
}

// Property-style check: join order must not change results. The planner
// picks join order greedily; compare row counts across FROM permutations.
func TestJoinOrderInvariance(t *testing.T) {
	db := miniDB(t)
	queries := []string{
		`SELECT Papers.id FROM Papers, Paper_Authors, Authors
			WHERE Papers.id = Paper_Authors.paper_id AND Paper_Authors.author_id = Authors.id`,
		`SELECT Papers.id FROM Authors, Papers, Paper_Authors
			WHERE Papers.id = Paper_Authors.paper_id AND Paper_Authors.author_id = Authors.id`,
		`SELECT Papers.id FROM Paper_Authors, Authors, Papers
			WHERE Paper_Authors.author_id = Authors.id AND Papers.id = Paper_Authors.paper_id`,
	}
	var counts []int
	for _, q := range queries {
		r := mustExec(t, db, q)
		counts = append(counts, len(r.Rows))
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Errorf("join order changed results: %v", counts)
	}
	if counts[0] != 8 {
		t.Errorf("join rows = %d, want 8", counts[0])
	}
}
