// Package sqlexec executes parsed SQL statements (internal/sqlparse)
// against the in-memory relational engine (internal/relational). It
// implements a small cost-aware planner: selection pushdown onto base
// tables, greedy equi-join ordering over the WHERE/ON join graph (hash
// joins), and falls back to theta/cross joins only when no join
// predicate connects the next table.
//
// This layer is the stand-in for PostgreSQL's executor in the paper's
// three-tier architecture (§6.2): the graph-in-relational storage layer
// (internal/storage) translates ETable query patterns into SQL text,
// which lands here.
package sqlexec

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/relational"
	"repro/internal/sqlparse"
)

// conjunct is one ANDed predicate with the set of table aliases it
// references.
type conjunct struct {
	e       expr.Expr
	aliases map[string]bool
	used    bool
}

// splitConjuncts flattens nested ANDs into a list of predicates.
func splitConjuncts(e expr.Expr, dst []expr.Expr) []expr.Expr {
	if e == nil {
		return dst
	}
	if and, ok := e.(expr.And); ok {
		return splitConjuncts(and.Right, splitConjuncts(and.Left, dst))
	}
	return append(dst, e)
}

// planner resolves column references against the FROM tables and orders
// the joins.
type planner struct {
	db      *relational.DB
	tables  []sqlparse.TableRef // FROM order, including JOIN clauses
	schemas map[string]*relational.Schema
}

func newPlanner(db *relational.DB, stmt *sqlparse.SelectStmt) (*planner, error) {
	p := &planner{db: db, schemas: make(map[string]*relational.Schema)}
	add := func(ref sqlparse.TableRef) error {
		t, err := db.Table(ref.Name)
		if err != nil {
			return err
		}
		alias := ref.EffectiveAlias()
		if _, dup := p.schemas[alias]; dup {
			return fmt.Errorf("sqlexec: duplicate table alias %q", alias)
		}
		p.schemas[alias] = t.Schema()
		p.tables = append(p.tables, ref)
		return nil
	}
	for _, ref := range stmt.From {
		if err := add(ref); err != nil {
			return nil, err
		}
	}
	for _, j := range stmt.Joins {
		if err := add(j.Table); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// resolveColumn maps a column reference to the alias owning it. Agg
// canonical names (containing parentheses) resolve to no alias — they
// exist only post-grouping.
func (p *planner) resolveColumn(name string) (alias string, err error) {
	if strings.ContainsRune(name, '(') {
		return "", nil
	}
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		tbl, col := name[:i], name[i+1:]
		if s, ok := p.schemas[tbl]; ok {
			if !s.HasColumn(col) {
				return "", fmt.Errorf("sqlexec: table %q has no column %q", tbl, col)
			}
			return tbl, nil
		}
		return "", fmt.Errorf("sqlexec: unknown table or alias %q", tbl)
	}
	var found string
	for a, s := range p.schemas {
		if s.HasColumn(name) {
			if found != "" {
				return "", fmt.Errorf("sqlexec: ambiguous column %q (in %q and %q)", name, found, a)
			}
			found = a
		}
	}
	if found == "" {
		return "", fmt.Errorf("sqlexec: unknown column %q", name)
	}
	return found, nil
}

// analyze computes the alias set referenced by an expression.
func (p *planner) analyze(e expr.Expr) (conjunct, error) {
	c := conjunct{e: e, aliases: make(map[string]bool)}
	for _, name := range e.Columns(nil) {
		a, err := p.resolveColumn(name)
		if err != nil {
			return c, err
		}
		if a != "" {
			c.aliases[a] = true
		}
	}
	return c, nil
}

// equiJoinSides reports whether e is a single equality between columns
// of two different aliases, returning the two column names.
func (p *planner) equiJoinSides(e expr.Expr) (left, right string, ok bool) {
	cmp, isCmp := e.(expr.Cmp)
	if !isCmp || cmp.Op != expr.OpEq {
		return "", "", false
	}
	lc, lok := cmp.Left.(expr.Col)
	rc, rok := cmp.Right.(expr.Col)
	if !lok || !rok {
		return "", "", false
	}
	la, err1 := p.resolveColumn(lc.Name)
	ra, err2 := p.resolveColumn(rc.Name)
	if err1 != nil || err2 != nil || la == "" || ra == "" || la == ra {
		return "", "", false
	}
	return lc.Name, rc.Name, true
}

// buildJoined loads, filters, and joins all FROM tables, returning the
// combined relation. Conjuncts that could not be applied during the join
// phase (e.g. referencing aggregate names) are returned for the caller.
func (p *planner) buildJoined(where expr.Expr, joins []sqlparse.JoinClause) (*relational.Rel, []expr.Expr, error) {
	var raw []expr.Expr
	raw = splitConjuncts(where, raw)
	for _, j := range joins {
		raw = splitConjuncts(j.On, raw)
	}
	conjuncts := make([]conjunct, 0, len(raw))
	for _, e := range raw {
		c, err := p.analyze(e)
		if err != nil {
			return nil, nil, err
		}
		conjuncts = append(conjuncts, c)
	}

	// Load base relations, applying single-table predicates immediately.
	rels := make(map[string]*relational.Rel, len(p.tables))
	for _, ref := range p.tables {
		t, err := p.db.Table(ref.Name)
		if err != nil {
			return nil, nil, err
		}
		alias := ref.EffectiveAlias()
		rel := t.Rel()
		if alias != ref.Name {
			rel = relational.Rename(rel, alias)
		}
		for i := range conjuncts {
			c := &conjuncts[i]
			if c.used || len(c.aliases) != 1 || !c.aliases[alias] {
				continue
			}
			filtered, err := relational.Select(rel, c.e)
			if err != nil {
				return nil, nil, err
			}
			rel = filtered
			c.used = true
		}
		rels[alias] = rel
	}

	// Greedy join ordering: start from the first FROM table, repeatedly
	// attach a table connected by an equality predicate; fall back to
	// theta, then cross joins.
	joined := map[string]bool{}
	var cur *relational.Rel
	remaining := make([]string, 0, len(p.tables))
	for _, ref := range p.tables {
		remaining = append(remaining, ref.EffectiveAlias())
	}

	attach := func(alias string, joinWith func(r *relational.Rel) (*relational.Rel, error)) error {
		next, err := joinWith(rels[alias])
		if err != nil {
			return err
		}
		cur = next
		joined[alias] = true
		for i, a := range remaining {
			if a == alias {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
		// Apply any predicate whose aliases are now all joined.
		for i := range conjuncts {
			c := &conjuncts[i]
			if c.used || len(c.aliases) == 0 {
				continue
			}
			all := true
			for a := range c.aliases {
				if !joined[a] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			filtered, err := relational.Select(cur, c.e)
			if err != nil {
				return err
			}
			cur = filtered
			c.used = true
		}
		return nil
	}

	if err := attach(remaining[0], func(r *relational.Rel) (*relational.Rel, error) {
		return r, nil
	}); err != nil {
		return nil, nil, err
	}

	for len(remaining) > 0 {
		// 1) Equality predicate bridging joined ↔ one unjoined table.
		attached := false
		for i := range conjuncts {
			c := &conjuncts[i]
			if c.used {
				continue
			}
			lcol, rcol, isEq := p.equiJoinSides(c.e)
			if !isEq {
				continue
			}
			la, _ := p.resolveColumn(lcol)
			ra, _ := p.resolveColumn(rcol)
			var newAlias, joinedCol, newCol string
			switch {
			case joined[la] && !joined[ra]:
				newAlias, joinedCol, newCol = ra, lcol, rcol
			case joined[ra] && !joined[la]:
				newAlias, joinedCol, newCol = la, rcol, lcol
			default:
				continue
			}
			c.used = true
			if err := attach(newAlias, func(r *relational.Rel) (*relational.Rel, error) {
				return relational.EquiJoin(cur, r, joinedCol, newCol)
			}); err != nil {
				return nil, nil, err
			}
			attached = true
			break
		}
		if attached {
			continue
		}
		// 2) Any predicate bridging joined ↔ exactly one unjoined table.
		for i := range conjuncts {
			c := &conjuncts[i]
			if c.used || len(c.aliases) < 2 {
				continue
			}
			var unjoined []string
			anyJoined := false
			for a := range c.aliases {
				if joined[a] {
					anyJoined = true
				} else {
					unjoined = append(unjoined, a)
				}
			}
			if !anyJoined || len(unjoined) != 1 {
				continue
			}
			c.used = true
			if err := attach(unjoined[0], func(r *relational.Rel) (*relational.Rel, error) {
				return relational.ThetaJoin(cur, r, c.e)
			}); err != nil {
				return nil, nil, err
			}
			attached = true
			break
		}
		if attached {
			continue
		}
		// 3) Cross join the next table in FROM order.
		if err := attach(remaining[0], func(r *relational.Rel) (*relational.Rel, error) {
			return relational.CrossJoin(cur, r), nil
		}); err != nil {
			return nil, nil, err
		}
	}

	// Residual predicates that reference no table columns (e.g. aggregate
	// names rewritten from HAVING misuse) are returned to the caller.
	var residual []expr.Expr
	for i := range conjuncts {
		if !conjuncts[i].used {
			residual = append(residual, conjuncts[i].e)
		}
	}
	return cur, residual, nil
}
