package value

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INT",
		KindFloat:  "FLOAT",
		KindString: "STRING",
		KindBool:   "BOOL",
		Kind(99):   "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if got := Int(42); got.Kind() != KindInt || got.AsInt() != 42 {
		t.Errorf("Int(42) = %v", got)
	}
	if got := Float(2.5); got.Kind() != KindFloat || got.AsFloat() != 2.5 {
		t.Errorf("Float(2.5) = %v", got)
	}
	if got := Str("hi"); got.Kind() != KindString || got.AsString() != "hi" {
		t.Errorf("Str(hi) = %v", got)
	}
	if got := Bool(true); got.Kind() != KindBool || !got.AsBool() {
		t.Errorf("Bool(true) = %v", got)
	}
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Errorf("Null = %v", Null)
	}
}

func TestConversions(t *testing.T) {
	if Int(7).AsFloat() != 7.0 {
		t.Error("Int.AsFloat")
	}
	if Float(7.9).AsInt() != 7 {
		t.Error("Float.AsInt should truncate")
	}
	if Bool(true).AsInt() != 1 || Bool(false).AsInt() != 0 {
		t.Error("Bool.AsInt")
	}
	if Str("x").AsInt() != 0 || Str("x").AsFloat() != 0 {
		t.Error("Str numeric conversions should be 0")
	}
	if Null.AsBool() || Int(0).AsBool() || Float(0).AsBool() || Str("").AsBool() {
		t.Error("falsy values should be false")
	}
	if !Int(3).AsBool() || !Float(0.5).AsBool() || !Str("a").AsBool() {
		t.Error("truthy values should be true")
	}
	if Null.AsString() != "NULL" {
		t.Error("Null.AsString")
	}
}

func TestIsNumeric(t *testing.T) {
	if !Int(1).IsNumeric() || !Float(1).IsNumeric() {
		t.Error("numbers are numeric")
	}
	if Str("1").IsNumeric() || Bool(true).IsNumeric() || Null.IsNumeric() {
		t.Error("non-numbers are not numeric")
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		v    V
		want string
	}{
		{Null, "NULL"},
		{Int(-5), "-5"},
		{Float(1.25), "1.25"},
		{Str("abc"), "abc"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.Format(); got != c.want {
			t.Errorf("Format(%v) = %q, want %q", c.v, got, c.want)
		}
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSQL(t *testing.T) {
	if got := Str("it's").SQL(); got != "'it''s'" {
		t.Errorf("SQL quoting = %q", got)
	}
	if got := Int(3).SQL(); got != "3" {
		t.Errorf("Int SQL = %q", got)
	}
}

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b V
		want int
	}{
		{Null, Null, 0},
		{Null, Int(0), -1},
		{Int(0), Null, 1},
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Int(0), -1}, // bool ranks below numerics
		{Int(5), Str("a"), -1},   // numerics rank below strings
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Int(2), Float(2)) {
		t.Error("Int 2 should equal Float 2")
	}
	if Equal(Str("2"), Int(2)) {
		t.Error("Str 2 should not equal Int 2")
	}
}

func TestKeyEqualityAgreement(t *testing.T) {
	vals := []V{
		Null, Int(0), Int(1), Int(-1), Float(0), Float(1), Float(1.5),
		Str(""), Str("1"), Str("a"), Bool(true), Bool(false),
		Float(math.Pow(2, 70)), Int(math.MaxInt64),
	}
	for _, a := range vals {
		for _, b := range vals {
			eq := Equal(a, b)
			keyEq := a.Key() == b.Key()
			if eq != keyEq {
				t.Errorf("Key/Equal disagree: %v vs %v (eq=%v keyEq=%v)", a, b, eq, keyEq)
			}
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want V
	}{
		{"42", Int(42)},
		{"-3", Int(-3)},
		{"2.5", Float(2.5)},
		{"true", Bool(true)},
		{"False", Bool(false)},
		{"null", Null},
		{"hello", Str("hello")},
		{"", Str("")},
	}
	for _, c := range cases {
		if got := Parse(c.in); !identical(got, c.want) {
			t.Errorf("Parse(%q) = %v (%v), want %v (%v)",
				c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func identical(a, b V) bool { return a.Kind() == b.Kind() && Equal(a, b) }

// Property: Compare is antisymmetric and reflexive over random ints/floats.
func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return Compare(va, vb) == -Compare(vb, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		va, vb := Float(a), Float(b)
		return Compare(va, vb) == -Compare(vb, va)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// Property: cross-kind comparison yields a total order (sorting never
// panics and is idempotent).
func TestCompareTotalOrder(t *testing.T) {
	f := func(ints []int64, floats []float64, strs []string) bool {
		var vals []V
		for _, i := range ints {
			vals = append(vals, Int(i))
		}
		for _, fl := range floats {
			if !math.IsNaN(fl) {
				vals = append(vals, Float(fl))
			}
		}
		for _, s := range strs {
			vals = append(vals, Str(s))
		}
		vals = append(vals, Null, Bool(true), Bool(false))
		sort.Slice(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
		return sort.SliceIsSorted(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Parse(Int(n).Format()) round-trips.
func TestParseRoundTripInt(t *testing.T) {
	f := func(n int64) bool {
		v := Parse(Int(n).Format())
		return v.Kind() == KindInt && v.AsInt() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
