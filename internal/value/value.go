// Package value implements the typed scalar value system shared by the
// relational engine, the typed graph model, and the ETable presentation
// layer. A value is one of NULL, INT, FLOAT, STRING, or BOOL.
//
// Values are small immutable tagged unions. Comparison follows SQL-like
// semantics: NULL sorts before everything, numeric kinds compare across
// INT/FLOAT, and comparisons between incompatible kinds fall back to a
// stable kind ordering so sorting is always total.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// V is an immutable scalar value.
type V struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the NULL value.
var Null = V{kind: KindNull}

// Int returns an INT value.
func Int(i int64) V { return V{kind: KindInt, i: i} }

// Float returns a FLOAT value.
func Float(f float64) V { return V{kind: KindFloat, f: f} }

// Str returns a STRING value.
func Str(s string) V { return V{kind: KindString, s: s} }

// Bool returns a BOOL value.
func Bool(b bool) V {
	var i int64
	if b {
		i = 1
	}
	return V{kind: KindBool, i: i}
}

// Kind reports the value's kind.
func (v V) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v V) IsNull() bool { return v.kind == KindNull }

// AsInt returns the value as an int64. FLOATs are truncated, BOOLs map to
// 0/1, everything else returns 0.
func (v V) AsInt() int64 {
	switch v.kind {
	case KindInt, KindBool:
		return v.i
	case KindFloat:
		return int64(v.f)
	default:
		return 0
	}
}

// AsFloat returns the value as a float64.
func (v V) AsFloat() float64 {
	switch v.kind {
	case KindInt, KindBool:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		return 0
	}
}

// AsString returns the value as a string. For STRING values it is the
// underlying string; otherwise the formatted representation.
func (v V) AsString() string {
	if v.kind == KindString {
		return v.s
	}
	return v.Format()
}

// AsBool returns the truthiness of the value. NULL is false; numbers are
// true when nonzero; strings when nonempty.
func (v V) AsBool() bool {
	switch v.kind {
	case KindNull:
		return false
	case KindInt, KindBool:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	default:
		return false
	}
}

// IsNumeric reports whether the value is INT or FLOAT.
func (v V) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Format renders the value for display.
func (v V) Format() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// SQL renders the value as a SQL literal.
func (v V) SQL() string {
	switch v.kind {
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	default:
		return v.Format()
	}
}

// String implements fmt.Stringer.
func (v V) String() string { return v.Format() }

// Key returns a string usable as a map key: equal values produce equal
// keys, and distinct values (modulo numeric INT/FLOAT equality) produce
// distinct keys.
func (v V) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00n"
	case KindInt:
		return "\x01" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) &&
			v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
			// Integral floats share a key with the equal INT.
			return "\x01" + strconv.FormatInt(int64(v.f), 10)
		}
		return "\x02" + strconv.FormatFloat(v.f, 'b', -1, 64)
	case KindString:
		return "\x03" + v.s
	case KindBool:
		return "\x04" + strconv.FormatInt(v.i, 10)
	default:
		return "\x7f"
	}
}

// kindRank orders kinds for cross-kind comparisons.
func kindRank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	default:
		return 4
	}
}

// Compare returns -1, 0, or +1 ordering v relative to o. NULL compares
// less than every non-NULL value; INT and FLOAT compare numerically;
// otherwise values of different kinds order by kind rank.
func Compare(v, o V) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	rv, ro := kindRank(v.kind), kindRank(o.kind)
	if rv != ro {
		if rv < ro {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindInt:
		if o.kind == KindInt {
			return cmpInt(v.i, o.i)
		}
		return cmpFloat(float64(v.i), o.f)
	case KindFloat:
		if o.kind == KindInt {
			return cmpFloat(v.f, float64(o.i))
		}
		return cmpFloat(v.f, o.f)
	case KindString:
		return strings.Compare(v.s, o.s)
	case KindBool:
		return cmpInt(v.i, o.i)
	default:
		return 0
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare semantics.
func Equal(v, o V) bool { return Compare(v, o) == 0 }

// Parse converts a textual literal into a value, preferring INT, then
// FLOAT, then BOOL, falling back to STRING. The empty string parses as
// STRING "".
func Parse(s string) V {
	if s == "" {
		return Str("")
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	switch strings.ToLower(s) {
	case "true":
		return Bool(true)
	case "false":
		return Bool(false)
	case "null":
		return Null
	}
	return Str(s)
}
