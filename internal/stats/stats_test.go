package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMoments(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if !approx(Variance(xs), 32.0/7, 1e-12) {
		t.Errorf("variance = %v", Variance(xs))
	}
	if !approx(StdDev(xs), math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("stddev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
	if Median(nil) != 0 {
		t.Error("empty median")
	}
}

// Reference values from standard t tables.
func TestTCDF(t *testing.T) {
	cases := []struct {
		t, df, want float64
	}{
		{0, 10, 0.5},
		{1.812, 10, 0.95},   // t_{0.95,10}
		{2.228, 10, 0.975},  // t_{0.975,10}
		{2.201, 11, 0.975},  // t_{0.975,11} (12 participants)
		{3.106, 11, 0.995},  // t_{0.995,11}
		{-2.228, 10, 0.025}, // symmetry
		{1.96, 1e6, 0.975},  // approaches normal
	}
	for _, c := range cases {
		if got := TCDF(c.t, c.df); !approx(got, c.want, 5e-4) {
			t.Errorf("TCDF(%v, %v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
	if !math.IsNaN(TCDF(1, 0)) {
		t.Error("df=0 should be NaN")
	}
}

func TestTQuantile(t *testing.T) {
	cases := []struct {
		conf, df, want float64
	}{
		{0.95, 11, 2.201},
		{0.99, 11, 3.106},
		{0.95, 5, 2.571},
	}
	for _, c := range cases {
		if got := TQuantile(c.conf, c.df); !approx(got, c.want, 5e-3) {
			t.Errorf("TQuantile(%v, %v) = %v, want %v", c.conf, c.df, got, c.want)
		}
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{10, 12, 14, 16, 18}
	// sd = sqrt(10), n = 5, t* (df=4) = 2.776
	want := 2.776 * math.Sqrt(10) / math.Sqrt(5)
	if got := CI95(xs); !approx(got, want, 1e-2) {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
	if CI95([]float64{1}) != 0 {
		t.Error("CI95 of singleton")
	}
}

func TestPairedTTest(t *testing.T) {
	// Classic example: clearly different paired samples.
	a := []float64{30, 31, 35, 33, 34, 32, 31, 30, 33, 32, 31, 34}
	b := []float64{50, 55, 52, 54, 53, 51, 56, 50, 52, 55, 54, 53}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.T >= 0 {
		t.Errorf("t = %v, want negative (a < b)", res.T)
	}
	if res.P >= 0.001 {
		t.Errorf("p = %v, want < 0.001", res.P)
	}
	if res.DF != 11 {
		t.Errorf("df = %v", res.DF)
	}
	if res.Significance() != "*" {
		t.Errorf("significance = %q", res.Significance())
	}

	// Identical-ish samples: no significance.
	c := []float64{1, 2, 3, 4, 5}
	d := []float64{1.1, 1.9, 3.2, 3.9, 5.1}
	res2, err := PairedTTest(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if res2.P < 0.10 {
		t.Errorf("p = %v, want not significant", res2.P)
	}
	if res2.Significance() != "" {
		t.Errorf("significance = %q", res2.Significance())
	}

	if _, err := PairedTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PairedTTest([]float64{1}, []float64{2}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := PairedTTest([]float64{1, 2}, []float64{2, 3}); err == nil {
		t.Error("zero-variance diffs accepted")
	}
}

func TestMarginalSignificance(t *testing.T) {
	r := TTestResult{P: 0.052}
	if r.Significance() != "°" {
		t.Errorf("p=0.052 marker = %q", r.Significance())
	}
}

func TestSummarizeLikert(t *testing.T) {
	l := SummarizeLikert([]int{7, 6, 6, 7, 5, 6, 7, 6, 6, 7, 6, 8})
	if l.N != 12 {
		t.Errorf("n = %d", l.N)
	}
	// 8 clamps to 7; mean = (7+6+6+7+5+6+7+6+6+7+6+7)/12 = 76/12
	if !approx(l.Mean, 76.0/12, 1e-9) {
		t.Errorf("mean = %v", l.Mean)
	}
	if l.AtLeast[6] != 11 {
		t.Errorf("≥6 count = %d, want 11", l.AtLeast[6])
	}
	if l.AtLeast[1] != 12 {
		t.Errorf("≥1 count = %d", l.AtLeast[1])
	}
	empty := SummarizeLikert(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Error("empty summary")
	}
	clamped := SummarizeLikert([]int{0})
	if clamped.Mean != 1 {
		t.Error("low clamp")
	}
}

// Property: TCDF is monotone in t and symmetric around 0.5.
func TestTCDFProperties(t *testing.T) {
	f := func(a, b float64) bool {
		ta := math.Mod(math.Abs(a), 10)
		tb := math.Mod(math.Abs(b), 10)
		if ta > tb {
			ta, tb = tb, ta
		}
		df := 7.0
		if TCDF(ta, df) > TCDF(tb, df)+1e-12 {
			return false
		}
		return approx(TCDF(ta, df)+TCDF(-ta, df), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
