// Package stats provides the statistics the paper's evaluation reports:
// means, standard deviations, 95% confidence intervals for the mean, and
// two-tailed paired t-tests (Figure 10's error bars and significance
// markers), plus Likert-scale aggregation for Table 3.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the sample variance (n-1 denominator).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// lgamma returns the log-gamma function.
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaIncomplete computes the regularized incomplete beta function
// I_x(a, b) by the continued-fraction expansion (Numerical Recipes
// formulation), accurate to ~1e-12 for the arguments t-tests need.
func betaIncomplete(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for betaIncomplete using
// Lentz's method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		tiny    = 1e-30
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// TCDF returns P(T <= t) for Student's t distribution with df degrees of
// freedom.
func TCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	p := 0.5 * betaIncomplete(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TQuantile returns the two-sided critical value t* with
// P(|T| <= t*) = conf for df degrees of freedom, via bisection on TCDF.
func TQuantile(conf, df float64) float64 {
	target := 1 - (1-conf)/2
	lo, hi := 0.0, 1000.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, df) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean of xs (the error bars of Figure 10).
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	tcrit := TQuantile(0.95, float64(n-1))
	return tcrit * StdDev(xs) / math.Sqrt(float64(n))
}

// TTestResult reports a paired two-tailed t-test.
type TTestResult struct {
	T  float64 // t statistic
	DF float64 // degrees of freedom (n-1)
	P  float64 // two-tailed p-value
}

// Significance renders the paper's Figure 10 markers: "*" for p < 0.01,
// "°" for p < 0.10, "" otherwise.
func (r TTestResult) Significance() string {
	switch {
	case r.P < 0.01:
		return "*"
	case r.P < 0.10:
		return "°"
	default:
		return ""
	}
}

// PairedTTest runs a two-tailed paired t-test on equal-length samples,
// as the paper does for per-task completion times across the 12
// within-subject participants.
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, fmt.Errorf("stats: paired samples differ in length (%d vs %d)", len(a), len(b))
	}
	if len(a) < 2 {
		return TTestResult{}, fmt.Errorf("stats: need at least 2 pairs")
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	sd := StdDev(diffs)
	if sd == 0 {
		return TTestResult{}, fmt.Errorf("stats: zero variance in differences")
	}
	n := float64(len(diffs))
	t := Mean(diffs) / (sd / math.Sqrt(n))
	df := n - 1
	p := 2 * (1 - TCDF(math.Abs(t), df))
	return TTestResult{T: t, DF: df, P: p}, nil
}

// Likert summarizes 7-point Likert responses: mean and the count of
// responses at or above a threshold (the paper reports "11/12 rated ≥6"
// style fractions).
type Likert struct {
	Mean    float64
	N       int
	AtLeast map[int]int
}

// SummarizeLikert aggregates integer ratings clamped to [1, 7].
func SummarizeLikert(ratings []int) Likert {
	l := Likert{N: len(ratings), AtLeast: map[int]int{}}
	if len(ratings) == 0 {
		return l
	}
	sum := 0
	for _, r := range ratings {
		if r < 1 {
			r = 1
		}
		if r > 7 {
			r = 7
		}
		sum += r
		for t := 1; t <= r; t++ {
			l.AtLeast[t]++
		}
	}
	l.Mean = float64(sum) / float64(len(ratings))
	return l
}
