package stats

import (
	"math"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/tgm"
	"repro/internal/value"
)

// statGraph builds a small two-type graph: 8 As (attr "k" cycling over
// 4 values, attr "u" unique), 4 Bs, and A→B edges with known degrees
// (A0: 4 edges, A1: 2, A2: 1, A3: 1, A4–A7: 0). The type "Empty" has no
// instances — the division-by-zero guard case.
func statGraph(t testing.TB) *tgm.InstanceGraph {
	t.Helper()
	s := tgm.NewSchemaGraph()
	if _, err := s.AddNodeType(tgm.NodeType{Name: "A", Label: "u", Attrs: []tgm.Attr{
		{Name: "k", Type: value.KindInt},
		{Name: "u", Type: value.KindInt},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddNodeType(tgm.NodeType{Name: "B", Label: "id",
		Attrs: []tgm.Attr{{Name: "id", Type: value.KindInt}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddNodeType(tgm.NodeType{Name: "Empty", Label: "id",
		Attrs: []tgm.Attr{{Name: "id", Type: value.KindInt}}}); err != nil {
		t.Fatal(err)
	}
	for _, et := range []tgm.EdgeType{
		{Name: "A-B", Source: "A", Target: "B"},
		{Name: "Empty-B", Source: "Empty", Target: "B"},
	} {
		if _, err := s.AddEdgeType(et); err != nil {
			t.Fatal(err)
		}
	}
	g := tgm.NewInstanceGraph(s)
	var as, bs []tgm.NodeID
	for i := 0; i < 8; i++ {
		id, err := g.AddNode("A", []value.V{value.Int(int64(i % 4)), value.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		as = append(as, id)
	}
	for i := 0; i < 4; i++ {
		id, err := g.AddNode("B", []value.V{value.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, id)
	}
	for _, e := range [][2]int{{0, 0}, {0, 1}, {0, 2}, {0, 3}, {1, 0}, {1, 1}, {2, 0}, {3, 3}} {
		if err := g.AddEdge("A-B", as[e[0]], bs[e[1]]); err != nil {
			t.Fatal(err)
		}
	}
	g.Freeze()
	return g
}

func TestCollectEdgeStats(t *testing.T) {
	s := Collect(statGraph(t))
	es := s.Edges["A-B"]
	if es.Count != 8 || es.Sources != 8 || es.SourcesWithOut != 4 {
		t.Fatalf("A-B stats = %+v", es)
	}
	if es.MaxOutDegree != 4 {
		t.Errorf("max degree = %d, want 4", es.MaxOutDegree)
	}
	if es.Fanout != 1.0 {
		t.Errorf("fanout = %v, want 1", es.Fanout)
	}
	// Histogram: degree 1 ×2 → bucket 0; degree 2 ×1 → bucket 1;
	// degree 4 ×1 → bucket 2.
	if es.Hist[0] != 2 || es.Hist[1] != 1 || es.Hist[2] != 1 {
		t.Errorf("hist = %v", es.Hist[:4])
	}
	// Quantiles: half the sources have degree 0, so the median is 0 and
	// the p95 lands in the top bucket (degree 4).
	if q := es.DegreeQuantile(0.5); q != 0 {
		t.Errorf("p50 = %d, want 0", q)
	}
	if q := es.DegreeQuantile(0.95); q != 4 {
		t.Errorf("p95 = %d, want 4", q)
	}
	if q := es.DegreeQuantile(1.5); q != 4 {
		t.Errorf("q>1 = %d, want max-degree clamp", q)
	}
}

// TestEmptyTypeGuards is the division-by-zero satellite: every statistic
// over a node type with no instances must be finite (0), never NaN.
func TestEmptyTypeGuards(t *testing.T) {
	s := Collect(statGraph(t))
	es := s.Edges["Empty-B"]
	if es.Sources != 0 || es.Count != 0 {
		t.Fatalf("Empty-B stats = %+v", es)
	}
	if math.IsNaN(es.Fanout) || es.Fanout != 0 {
		t.Errorf("empty-source fanout = %v, want 0", es.Fanout)
	}
	if got := s.Fanout("Empty-B"); got != 0 || math.IsNaN(got) {
		t.Errorf("Fanout(Empty-B) = %v", got)
	}
	if got := s.Fanout("no-such-edge"); got != 0 {
		t.Errorf("Fanout(unknown) = %v", got)
	}
	if q := es.DegreeQuantile(0.9); q != 0 {
		t.Errorf("empty quantile = %d", q)
	}
	if got := s.EstimateBaseRows("Empty", expr.MustParse("id = 3")); got != 0 || math.IsNaN(got) {
		t.Errorf("EstimateBaseRows(Empty) = %v", got)
	}
	sel := s.CondSelectivity("Empty", expr.MustParse("id = 3"))
	if math.IsNaN(sel) || sel < 0 || sel > 1 {
		t.Errorf("CondSelectivity over empty type = %v", sel)
	}
	// A nil statistics object (nil graph) degrades, never panics.
	var nils *Graph
	if got := nils.Fanout("A-B"); got != 0 {
		t.Errorf("nil stats fanout = %v", got)
	}
	if For(nil) != nil {
		t.Error("For(nil) != nil")
	}
}

func TestNodeNDV(t *testing.T) {
	s := Collect(statGraph(t))
	ns := s.Nodes["A"]
	if ns.Count != 8 {
		t.Fatalf("A count = %d", ns.Count)
	}
	if ns.NDV["k"] != 4 || ns.NDV["u"] != 8 {
		t.Errorf("NDV = %v", ns.NDV)
	}
	if s.Nodes["Empty"].Count != 0 {
		t.Errorf("Empty count = %d", s.Nodes["Empty"].Count)
	}
}

func TestCondSelectivity(t *testing.T) {
	s := Collect(statGraph(t))
	cases := []struct {
		cond string
		want float64
	}{
		{"k = 2", 1.0 / 4},       // NDV(k)=4
		{"u = 2", 1.0 / 8},       // NDV(u)=8
		{"2 = k", 1.0 / 4},       // constant on the left
		{"k <> 2", 1 - 1.0/4},    //
		{"k > 1", 1.0 / 3},       // range default
		{"u like '%x%'", 0.1},    // like default
		{"k in (1, 2)", 2.0 / 4}, // |list|/NDV
		{"k = 1 and u = 1", 1.0 / 32},
		{"k = 1 or k = 2", 1.0/4 + 1.0/4 - 1.0/16},
	}
	for _, tc := range cases {
		got := s.CondSelectivity("A", expr.MustParse(tc.cond))
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("sel(%q) = %v, want %v", tc.cond, got, tc.want)
		}
	}
	if got := s.CondSelectivity("A", nil); got != 1 {
		t.Errorf("sel(nil) = %v", got)
	}
	// Selectivities always land in [0, 1], even for stacked NOTs and
	// unknown attributes.
	for _, cond := range []string{"not (k = 1)", "nope = 3", "k = 1 and k = 2 and u > 3"} {
		got := s.CondSelectivity("A", expr.MustParse(cond))
		if got < 0 || got > 1 || math.IsNaN(got) {
			t.Errorf("sel(%q) = %v out of range", cond, got)
		}
	}
	if got := s.EstimateBaseRows("A", expr.MustParse("k = 2")); math.Abs(got-2) > 1e-12 {
		t.Errorf("EstimateBaseRows(A, k=2) = %v, want 2", got)
	}
}

func TestForCachesFrozenGraphs(t *testing.T) {
	g := statGraph(t)
	var wg sync.WaitGroup
	results := make([]*Graph, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = For(g)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent For calls returned different statistics objects")
		}
	}
	if For(g) != results[0] {
		t.Fatal("For did not cache the frozen graph's statistics")
	}
}
