package stats

// Planner statistics over a TGDB instance graph. Where the rest of this
// package reproduces the paper's *evaluation* statistics (t-tests,
// confidence intervals), this file computes the *cost-model* statistics
// the join planner consumes: per-edge-type out-degree histograms and
// per-node-type attribute NDV (number-of-distinct-values) estimates.
// They replace the single tgm.AvgOutDegree scalar the planner used
// before: a per-edge fan-out plus NDV-based condition selectivities let
// the planner estimate intermediate cardinalities well enough to order
// joins and to decide when a query is too small to be worth fanning out
// to the worker pool.
//
// Statistics are computed once per graph — translate.Translate collects
// them right after freezing the instance graph — and are immutable
// afterwards, like the graph itself. For returns the frozen graph's
// cached statistics without recomputation.

import (
	"math"
	"strings"

	"repro/internal/expr"
	"repro/internal/tgm"
)

// HistBuckets is the number of log2 out-degree buckets per edge type.
// Bucket b counts source nodes whose out-degree d satisfies
// 2^b <= d < 2^(b+1); degree-0 sources are Sources - SourcesWithOut.
// 16 buckets cover degrees up to 65535, far beyond any per-node fan-out
// the academic graph produces.
const HistBuckets = 16

// EdgeStats summarizes one edge type's out-degree distribution over all
// nodes of its source type.
type EdgeStats struct {
	// Count is the number of edges of this type.
	Count int
	// Sources is the number of nodes of the source type (including
	// nodes with no out-edge of this type).
	Sources int
	// SourcesWithOut is the number of source nodes with at least one
	// out-edge of this type.
	SourcesWithOut int
	// MaxOutDegree is the largest out-degree of any source node.
	MaxOutDegree int
	// Fanout is Count/Sources — the expected number of neighbors per
	// source node, counting zero-degree sources. It is 0 (never NaN)
	// when the source type has no instances.
	Fanout float64
	// Hist is the log2 out-degree histogram (see HistBuckets).
	Hist [HistBuckets]int
}

// DegreeQuantile returns an upper bound on the out-degree of the q
// quantile (0 < q <= 1) of source nodes, from the histogram. Zero-degree
// sources count below the first bucket. It answers "how skewed is this
// edge?" — a planner can distrust a mean fan-out whose p90 is 100× it.
func (e EdgeStats) DegreeQuantile(q float64) int {
	if e.Sources == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := int(math.Ceil(q * float64(e.Sources)))
	seen := e.Sources - e.SourcesWithOut // degree-0 sources
	if seen >= target {
		return 0
	}
	for b := 0; b < HistBuckets; b++ {
		seen += e.Hist[b]
		if seen >= target {
			upper := (1 << (b + 1)) - 1 // max degree in bucket b
			if upper > e.MaxOutDegree {
				upper = e.MaxOutDegree
			}
			return upper
		}
	}
	return e.MaxOutDegree
}

// NodeStats summarizes one node type.
type NodeStats struct {
	// Count is the number of instances.
	Count int
	// NDV maps attribute name → number of distinct non-null values.
	NDV map[string]int
}

// Graph is the full statistics set of one instance graph.
type Graph struct {
	// Nodes maps node type name → NodeStats.
	Nodes map[string]NodeStats
	// Edges maps edge type name → EdgeStats.
	Edges map[string]EdgeStats
}

// Collect computes fresh statistics for g in one pass over its nodes
// and adjacency lists. Call it once per graph (For caches the result
// for frozen graphs).
func Collect(g *tgm.InstanceGraph) *Graph {
	s := &Graph{
		Nodes: make(map[string]NodeStats),
		Edges: make(map[string]EdgeStats),
	}
	schema := g.Schema()
	for _, nt := range schema.NodeTypes() {
		ids := g.NodesOfType(nt.Name)
		ns := NodeStats{Count: len(ids), NDV: make(map[string]int, len(nt.Attrs))}
		for ai, a := range nt.Attrs {
			col, err := g.AttrColumn(nt.Name, ai)
			if err != nil {
				// Collection runs at translate time over memory-resident
				// graphs; out-of-core graphs restore stats from their
				// snapshot's STAT section instead of recollecting. A
				// fault failure here degrades to NDV 0 for the column.
				ns.NDV[a.Name] = 0
				continue
			}
			distinct := make(map[string]struct{}, len(ids))
			for _, v := range col {
				if v.IsNull() {
					continue
				}
				distinct[v.Key()] = struct{}{}
			}
			ns.NDV[a.Name] = len(distinct)
		}
		s.Nodes[nt.Name] = ns
	}
	for _, et := range schema.EdgeTypes() {
		srcIDs := g.NodesOfType(et.Source)
		es := EdgeStats{Sources: len(srcIDs)}
		for _, id := range srcIDs {
			d := g.Degree(id, et.Name)
			if d == 0 {
				continue
			}
			es.Count += d
			es.SourcesWithOut++
			if d > es.MaxOutDegree {
				es.MaxOutDegree = d
			}
			b := 0
			for v := d; v > 1; v >>= 1 {
				b++
			}
			if b >= HistBuckets {
				b = HistBuckets - 1
			}
			es.Hist[b]++
		}
		if es.Sources > 0 {
			es.Fanout = float64(es.Count) / float64(es.Sources)
		}
		s.Edges[et.Name] = es
	}
	return s
}

// For returns g's statistics, computing and caching them on first use.
// The cache lives on the graph itself (InstanceGraph.StatsCache), so
// statistics share the graph's lifetime — no global registry pinning
// graphs for the life of the process. Only frozen graphs are cached (an
// unfrozen graph could still change); translate.Translate calls For
// right after freezing, so serving-path lookups always hit the cache.
// For a nil graph it returns nil.
//
// Performance note: on an UNFROZEN graph every call recollects — a full
// O(nodes×attrs + edges) pass. Callers that execute queries repeatedly
// over a hand-built graph should Freeze it first (the etable planner
// calls For once per planned query).
func For(g *tgm.InstanceGraph) *Graph {
	if g == nil {
		return nil
	}
	if v := g.StatsCache(); v != nil {
		return v.(*Graph)
	}
	s := Collect(g)
	if g.Frozen() {
		// A concurrent collector may have landed first; the first
		// published value wins so every caller shares one object.
		return g.SetStatsCache(s).(*Graph)
	}
	return s
}

// Attach publishes precomputed statistics for a frozen graph so later
// For calls return them without a collection pass. It exists for
// restore paths (internal/snapshot) that persisted the statistics next
// to the graph: booting from a snapshot must not pay the O(nodes×attrs
// + edges) Collect cost translation already paid. If statistics were
// already published (a concurrent For raced ahead), the first published
// value wins and is returned; for an unfrozen graph s is returned
// unpublished, mirroring For's caching rule.
func Attach(g *tgm.InstanceGraph, s *Graph) *Graph {
	if g == nil || s == nil {
		return s
	}
	if g.Frozen() {
		return g.SetStatsCache(s).(*Graph)
	}
	return s
}

// Fanout returns the expected neighbors-per-source of an edge type,
// 0 for unknown edge types or empty source types (never NaN).
func (s *Graph) Fanout(edgeType string) float64 {
	if s == nil {
		return 0
	}
	return s.Edges[edgeType].Fanout
}

// ndv resolves an attribute's NDV for a node type, accepting dotted
// names ("Papers.year") like the expression environment does. The
// second result reports whether the attribute is known.
func (s *Graph) ndv(nodeType, attr string) (int, bool) {
	ns, ok := s.Nodes[nodeType]
	if !ok {
		return 0, false
	}
	if n, ok := ns.NDV[attr]; ok {
		return n, true
	}
	if i := strings.LastIndexByte(attr, '.'); i >= 0 {
		if n, ok := ns.NDV[attr[i+1:]]; ok {
			return n, true
		}
	}
	return 0, false
}

// Textbook default selectivities for predicates the NDV cannot refine.
const (
	defaultEqSel    = 0.1 // equality on an unknown attribute
	defaultRangeSel = 1.0 / 3
	defaultLikeSel  = 0.1
	defaultNullSel  = 0.1
)

// CondSelectivity estimates the fraction of nodeType's instances that
// satisfy cond, from NDV statistics and textbook defaults, clamped to
// [0, 1]. A nil condition is 1. Every division is guarded: empty types
// and zero NDVs yield finite estimates, never NaN or Inf.
func (s *Graph) CondSelectivity(nodeType string, cond expr.Expr) float64 {
	if cond == nil {
		return 1
	}
	if s == nil {
		return defaultRangeSel
	}
	sel := s.condSel(nodeType, cond)
	if sel < 0 {
		return 0
	}
	if sel > 1 {
		return 1
	}
	return sel
}

func (s *Graph) condSel(nodeType string, cond expr.Expr) float64 {
	switch c := cond.(type) {
	case expr.Cmp:
		attr, isAttrConst := attrConstCmp(c)
		switch c.Op {
		case expr.OpEq:
			if isAttrConst {
				if n, ok := s.ndv(nodeType, attr); ok && n > 0 {
					return 1 / float64(n)
				}
			}
			return defaultEqSel
		case expr.OpNe:
			if isAttrConst {
				if n, ok := s.ndv(nodeType, attr); ok && n > 0 {
					return 1 - 1/float64(n)
				}
			}
			return 1 - defaultEqSel
		default:
			return defaultRangeSel
		}
	case expr.Like:
		return defaultLikeSel
	case expr.Between:
		return defaultRangeSel * defaultRangeSel * 2 // narrower than one-sided range
	case expr.In:
		sel := defaultEqSel * float64(len(c.List))
		if attr := colName(c.Left); attr != "" {
			if n, ok := s.ndv(nodeType, attr); ok && n > 0 {
				sel = float64(len(c.List)) / float64(n)
			}
		}
		if sel > 1 {
			sel = 1
		}
		if c.Negate {
			return 1 - sel
		}
		return sel
	case expr.IsNull:
		if c.Negate {
			return 1 - defaultNullSel
		}
		return defaultNullSel
	case expr.And:
		return s.condSel(nodeType, c.Left) * s.condSel(nodeType, c.Right)
	case expr.Or:
		a, b := s.condSel(nodeType, c.Left), s.condSel(nodeType, c.Right)
		return a + b - a*b
	case expr.Not:
		return 1 - s.condSel(nodeType, c.Inner)
	default:
		return defaultRangeSel
	}
}

// attrConstCmp reports whether a comparison is column-vs-constant (in
// either order) and returns the column name.
func attrConstCmp(c expr.Cmp) (attr string, ok bool) {
	if n := colName(c.Left); n != "" {
		if _, isConst := c.Right.(expr.Const); isConst {
			return n, true
		}
	}
	if n := colName(c.Right); n != "" {
		if _, isConst := c.Left.(expr.Const); isConst {
			return n, true
		}
	}
	return "", false
}

func colName(e expr.Expr) string {
	if c, ok := e.(expr.Col); ok {
		return c.Name
	}
	return ""
}

// EstimateBaseRows estimates |σ_cond(R^G_nodeType)| without executing
// the selection: instance count × condition selectivity. Empty types
// estimate 0.
func (s *Graph) EstimateBaseRows(nodeType string, cond expr.Expr) float64 {
	if s == nil {
		return 0
	}
	return float64(s.Nodes[nodeType].Count) * s.CondSelectivity(nodeType, cond)
}
