package session

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/etable"
	"repro/internal/graphrel"
	"repro/internal/pager"
	"repro/internal/spill"
	"repro/internal/testdb"
	"repro/internal/value"
)

// spillSession builds a session over the Figure 3 corpus whose every
// result larger than trigger rows spills to named run files in a
// per-test directory (named so tests can corrupt and count them).
func spillSession(t testing.TB, trigger int) (*Session, *graphrel.SpillPolicy) {
	t.Helper()
	res, err := testdb.Figure3Translation()
	if err != nil {
		t.Fatal(err)
	}
	s := New(res.Schema, res.Instance)
	pol := &graphrel.SpillPolicy{
		Dir:         t.TempDir(),
		TriggerRows: trigger,
		Pool:        pager.New(4),
		Metrics:     &spill.Metrics{},
		Named:       true,
		RunRows:     2,
	}
	s.SetMaxRows(trigger)
	s.SetSpill(pol)
	return s, pol
}

// renderWindow serializes one windowed result canonically so spilled
// and heap sessions can be compared byte for byte.
func renderWindow(res *etable.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total=%d offset=%d\n", res.Total(), res.Offset)
	for _, c := range res.Columns {
		fmt.Fprintf(&sb, "col|%d|%s\n", c.Kind, c.Name)
	}
	for _, row := range res.Rows {
		fmt.Fprintf(&sb, "row|%d|%s", row.Node, row.Label)
		for ci := range res.Columns {
			cell := &row.Cells[ci]
			sb.WriteString("|")
			if res.Columns[ci].Kind == etable.ColBase {
				sb.WriteString(cell.Value.Format())
			} else {
				for _, ref := range cell.Refs {
					fmt.Fprintf(&sb, "%d:%s;", ref.ID, ref.Label)
				}
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// runFiles lists the named spill run files currently in dir.
func runFiles(t testing.TB, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "etspill-*"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestSessionSpillEquivalence drives one spilled and one unbounded
// session through the same interaction — open, sort, hide, seeall —
// and asserts every rendered window is identical. The spilled session
// pages in windows at most trigger rows wide (the pre-window guard
// still caps single reads); the plain session renders the same
// windows from the heap.
func TestSessionSpillEquivalence(t *testing.T) {
	spilled, pol := spillSession(t, 2)
	plain := newSession(t)
	ctx := context.Background()

	// The pivot to Authors adds the join whose pair count crosses the
	// 2-row trigger; the joinless open stays on the heap by design (no
	// join, no amplification — the pre-window guard alone caps reads).
	steps := []struct {
		name  string
		apply func(s *Session) error
	}{
		{"open", func(s *Session) error { return s.Open("Papers") }},
		{"pivot", func(s *Session) error { return s.Pivot("Authors") }},
		{"sort", func(s *Session) error { return s.SortBy(etable.SortSpec{Attr: "name", Desc: true}) }},
		{"hide", func(s *Session) error { return s.HideColumn("id") }},
		{"seeall", func(s *Session) error {
			a, ok := s.Graph().FindNode("Authors", "name", value.Str("Arnab Nandi"))
			if !ok {
				return fmt.Errorf("author missing")
			}
			return s.Seeall(a.ID, "Papers")
		}},
	}
	for _, step := range steps {
		for _, s := range []*Session{spilled, plain} {
			if err := step.apply(s); err != nil {
				t.Fatalf("%s: %v", step.name, err)
			}
		}
		meta, err := spilled.WindowCtx(ctx, 0, 0)
		if err != nil {
			t.Fatalf("%s: window metadata: %v", step.name, err)
		}
		for off := 0; off < meta.Total(); off += 2 {
			got, err := spilled.WindowCtx(ctx, off, 2)
			if err != nil {
				t.Fatalf("%s: spilled window %d: %v", step.name, off, err)
			}
			want, err := plain.WindowCtx(ctx, off, 2)
			if err != nil {
				t.Fatalf("%s: plain window %d: %v", step.name, off, err)
			}
			if rg, rw := renderWindow(got), renderWindow(want); rg != rw {
				t.Fatalf("%s: window %d differs\nspilled:\n%s\nplain:\n%s", step.name, off, rg, rw)
			}
		}
	}
	if st := pol.Metrics.Snapshot(); st.Spills == 0 || st.RunBytes == 0 {
		t.Fatalf("no spill recorded across the walk: %+v", st)
	}

	// Closing the session removes every named run file.
	spilled.Close()
	if left := runFiles(t, pol.Dir); len(left) != 0 {
		t.Fatalf("run files left after Close: %v", left)
	}
}

// TestSessionSpillOversizedWindowStillRejected: spilling bounds
// memory, it does not unbound a single read — an explicit window wider
// than max-rows is still a RowLimitError with the unified payload.
func TestSessionSpillOversizedWindowStillRejected(t *testing.T) {
	s, _ := spillSession(t, 2)
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	_, err := s.WindowCtx(context.Background(), 0, -1)
	var rle *graphrel.RowLimitError
	if !errors.As(err, &rle) || rle.Limit != 2 || rle.Rows != 6 {
		t.Fatalf("unbounded read err = %v, want RowLimitError{Limit: 2, Rows: 6}", err)
	}
}

// TestSessionSpillCorruption is the robustness drill: a run file
// damaged mid-browse surfaces a typed *spill.CorruptError (no panic),
// the session keeps serving other queries, and Close still removes
// the damaged file.
func TestSessionSpillCorruption(t *testing.T) {
	s, pol := spillSession(t, 2)
	ctx := context.Background()
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	if err := s.Pivot("Authors"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WindowCtx(ctx, 0, 2); err != nil {
		t.Fatalf("first page before corruption: %v", err)
	}
	files := runFiles(t, pol.Dir)
	if len(files) == 0 {
		t.Fatal("no named run files to corrupt")
	}

	// Byte-flip the tail of every run file: the last run's payload no
	// longer matches its CRC.
	for _, name := range files {
		buf, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) == 0 {
			t.Fatalf("empty run file %s", name)
		}
		buf[len(buf)-1] ^= 0xFF
		if err := os.WriteFile(name, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Runs resident in the shared pool from the first page keep serving
	// — corruption surfaces only at the next disk fault. Churn the
	// 4-entry pool with other spilling presentations (each filter keeps
	// the join, so each spills and faults its own runs) until the
	// damaged runs are evicted. Stay under the presentation memo so the
	// revert below reuses the damaged files instead of re-preparing.
	for i := 0; i < 4; i++ {
		if err := s.Filter(fmt.Sprintf("id < %d", 2000+i)); err != nil {
			t.Fatalf("churn filter %d: %v", i, err)
		}
		if _, err := s.WindowCtx(ctx, 0, 2); err != nil {
			t.Fatalf("churn window %d: %v", i, err)
		}
	}

	// Reverting to the damaged presentation and faulting a fresh window
	// fails with the typed corruption error — never a panic.
	if err := s.Revert(1); err != nil {
		t.Fatal(err)
	}
	meta, err := s.WindowCtx(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	failOff := -1
	for off := 2; off < meta.Total(); off += 2 {
		if _, err := s.WindowCtx(ctx, off, 2); err != nil {
			var ce *spill.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("window %d over corrupt run: err = %v, want *spill.CorruptError", off, err)
			}
			failOff = off
			break
		}
	}
	if failOff < 0 {
		t.Fatal("corrupted tail run never surfaced while paging to the end")
	}

	// The session survives: a new query works (spilling to fresh,
	// undamaged files).
	if err := s.Filter("name like '%a%'"); err != nil {
		t.Fatalf("session dead after corruption: %v", err)
	}
	if _, err := s.WindowCtx(ctx, 0, 2); err != nil {
		t.Fatalf("window after corruption on fresh query: %v", err)
	}

	// Eviction path: Close removes the files, damaged or not.
	s.Close()
	if left := runFiles(t, pol.Dir); len(left) != 0 {
		t.Fatalf("run files left after Close: %v", left)
	}
}

// TestSessionSpillMemoEviction: cycling through more presentation
// states than the memo holds releases the evicted entries' spill
// files — disk usage is bounded by the memo, not by session history.
func TestSessionSpillMemoEviction(t *testing.T) {
	s, pol := spillSession(t, 2)
	ctx := context.Background()
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	if err := s.Pivot("Authors"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WindowCtx(ctx, 0, 2); err != nil {
		t.Fatal(err)
	}
	perPres := len(runFiles(t, pol.Dir))
	if perPres == 0 {
		t.Fatal("pivot did not spill")
	}
	// Each distinct filter over the join is a distinct spilled
	// presentation; cycling through more than the memo holds must
	// release the evicted entries' run files.
	const extra = memoEntries + 3
	for i := 0; i < extra; i++ {
		if err := s.Filter(fmt.Sprintf("id < %d", 1000+i)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.WindowCtx(ctx, 0, 2); err != nil {
			t.Fatal(err)
		}
	}
	live := len(runFiles(t, pol.Dir))
	if max := perPres * memoEntries; live > max {
		t.Fatalf("%d run files on disk after %d spilled states, memo holds %d (≤%d files) — evicted entries leak spill files",
			live, extra+1, memoEntries, max)
	}
	s.Close()
	if left := runFiles(t, pol.Dir); len(left) != 0 {
		t.Fatalf("run files left after Close: %v", left)
	}
}
