package session

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/etable"
	"repro/internal/testdb"
	"repro/internal/tgm"
	"repro/internal/value"
)

func newSession(t testing.TB) *Session {
	t.Helper()
	res, err := testdb.Figure3Translation()
	if err != nil {
		t.Fatal(err)
	}
	return New(res.Schema, res.Instance)
}

func TestOpenAndResult(t *testing.T) {
	s := newSession(t)
	if _, err := s.Result(); err == nil {
		t.Error("Result before Open should fail")
	}
	if err := s.Filter("year > 2000"); err == nil {
		t.Error("Filter before Open should fail")
	}
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 6 {
		t.Errorf("rows = %d", res.NumRows())
	}
	// Cached result identity.
	res2, _ := s.Result()
	if res != res2 {
		t.Error("result should be cached")
	}
	if err := s.Open("Nope"); err == nil {
		t.Error("unknown table accepted")
	}
	if len(s.History()) != 1 || s.Cursor() != 0 {
		t.Errorf("history = %d entries, cursor %d", len(s.History()), s.Cursor())
	}
	if s.History()[0].Action != "Open 'Papers' table" {
		t.Errorf("action = %q", s.History()[0].Action)
	}
}

func TestFilterAndHistory(t *testing.T) {
	s := newSession(t)
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	if err := s.Filter("year > 2010"); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Result()
	if res.NumRows() != 4 { // 2014, 2011×3
		t.Errorf("filtered rows = %d, want 4", res.NumRows())
	}
	if err := s.Filter("((bad"); err == nil {
		t.Error("bad filter accepted")
	}
	if err := s.Filter("year < 2014"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Result()
	if res.NumRows() != 3 {
		t.Errorf("doubly filtered rows = %d, want 3", res.NumRows())
	}
	// Revert to the first filter.
	if err := s.Revert(1); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Result()
	if res.NumRows() != 4 {
		t.Errorf("reverted rows = %d, want 4", res.NumRows())
	}
	// A new action truncates the redo suffix.
	if err := s.Filter("year = 2014"); err != nil {
		t.Fatal(err)
	}
	if len(s.History()) != 3 {
		t.Errorf("history after truncation = %d, want 3", len(s.History()))
	}
	if err := s.Revert(99); err == nil {
		t.Error("bad revert index accepted")
	}
}

func TestPivotNeighbor(t *testing.T) {
	s := newSession(t)
	s.Open("Conferences")
	s.Filter("acronym = 'SIGMOD'")
	// Pivot on the Papers neighbor column: Add.
	res, _ := s.Result()
	papersCol := ""
	for _, c := range res.Columns {
		if c.Kind == etable.ColNeighbor && c.TargetType == "Papers" {
			papersCol = c.Name
			break
		}
	}
	if papersCol == "" {
		t.Fatal("no Papers neighbor column")
	}
	if err := s.Pivot(papersCol); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Result()
	if res.PrimaryType.Name != "Papers" || res.NumRows() != 4 {
		t.Errorf("pivoted to %s with %d rows", res.PrimaryType.Name, res.NumRows())
	}
	// Pivot on the participating Conferences column: Shift back.
	if err := s.Pivot("Conferences"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Result()
	if res.PrimaryType.Name != "Conferences" || res.NumRows() != 1 {
		t.Errorf("shifted to %s with %d rows", res.PrimaryType.Name, res.NumRows())
	}
	if err := s.Pivot("acronym"); err == nil {
		t.Error("pivot on base attribute accepted")
	}
	if err := s.Pivot("nope"); err == nil {
		t.Error("pivot on missing column accepted")
	}
}

func TestSingle(t *testing.T) {
	s := newSession(t)
	s.Open("Papers")
	n, ok := s.Graph().FindNode("Authors", "name", value.Str("Arnab Nandi"))
	if !ok {
		t.Fatal("author missing")
	}
	if err := s.Single(n.ID); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Result()
	if res.NumRows() != 1 || res.Rows[0].Label != "Arnab Nandi" {
		t.Errorf("single = %+v", res.Rows)
	}
	if res.PrimaryType.Name != "Authors" {
		t.Errorf("primary = %s", res.PrimaryType.Name)
	}
	if err := s.Single(tgm.NodeID(9999)); err == nil {
		t.Error("bad node accepted")
	}
}

func TestSeeall(t *testing.T) {
	s := newSession(t)
	s.Open("Papers")
	p1, ok := s.Graph().FindNode("Papers", "id", value.Int(1))
	if !ok {
		t.Fatal("paper 1 missing")
	}
	// Click the author count of paper 1 (neighbor column).
	if err := s.Seeall(p1.ID, "Authors"); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Result()
	if res.PrimaryType.Name != "Authors" || res.NumRows() != 2 {
		t.Errorf("authors of paper 1 = %d rows of %s", res.NumRows(), res.PrimaryType.Name)
	}
	labels := map[string]bool{}
	for _, r := range res.Rows {
		labels[r.Label] = true
	}
	if !labels["H. V. Jagadish"] || !labels["Arnab Nandi"] {
		t.Errorf("authors = %v", labels)
	}
	// Error paths.
	if err := s.Seeall(tgm.NodeID(9999), "Authors"); err == nil {
		t.Error("bad node accepted")
	}
	if err := s.Seeall(p1.ID, "Authors"); err == nil {
		t.Error("node of non-primary type accepted")
	}
}

func TestSeeallParticipating(t *testing.T) {
	s := newSession(t)
	s.Open("Conferences")
	s.Filter("acronym = 'SIGMOD'")
	res, _ := s.Result()
	papersCol := ""
	for _, c := range res.Columns {
		if c.TargetType == "Papers" {
			papersCol = c.Name
			break
		}
	}
	s.Pivot(papersCol)
	// Now primary = Papers with participating Conferences column. Seeall
	// on the Conferences cell of paper 1 shifts to Conferences filtered
	// to paper 1's conference.
	p1, _ := s.Graph().FindNode("Papers", "id", value.Int(1))
	if err := s.Seeall(p1.ID, "Conferences"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Result()
	if res.PrimaryType.Name != "Conferences" || res.NumRows() != 1 || res.Rows[0].Label != "SIGMOD" {
		t.Errorf("seeall participating = %d rows of %s", res.NumRows(), res.PrimaryType.Name)
	}
}

func TestFilterByNeighbor(t *testing.T) {
	s := newSession(t)
	s.Open("Papers")
	if err := s.FilterByNeighbor("Authors", "name = 'H. V. Jagadish'"); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Result()
	// Jagadish's papers: 1, 2, 5.
	if res.PrimaryType.Name != "Papers" || res.NumRows() != 3 {
		t.Errorf("Jagadish papers = %d rows of %s", res.NumRows(), res.PrimaryType.Name)
	}
	if err := s.FilterByNeighbor("nope", "x = 1"); err == nil {
		t.Error("missing column accepted")
	}
	if err := s.FilterByNeighbor("year", "x = 1"); err == nil {
		t.Error("base column accepted")
	}
	// Neighbor filter composes with a base filter (the paper's Task 3
	// shape: author = X AND year >= Y).
	if err := s.Filter("year >= 2011"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Result()
	if res.NumRows() != 2 { // papers 2 (2014), 5 (2011)
		t.Errorf("filtered = %d, want 2", res.NumRows())
	}
}

func TestSortAndHide(t *testing.T) {
	s := newSession(t)
	s.Open("Papers")
	if err := s.SortBy(etable.SortSpec{Attr: "year", Desc: true}); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Result()
	yi := res.ColumnIndex("year")
	if res.Rows[0].Cells[yi].Value.AsInt() != 2014 {
		t.Errorf("top year = %v", res.Rows[0].Cells[yi].Value)
	}
	if err := s.SortBy(etable.SortSpec{Attr: "nope"}); err == nil {
		t.Error("bad sort accepted")
	}
	// Sorting by count of a reference column.
	if err := s.SortBy(etable.SortSpec{Column: "Authors", Desc: true}); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Result()
	if got := res.Rows[0].Cells[res.ColumnIndex("Authors")].Count(); got != 2 {
		t.Errorf("top author count = %d", got)
	}
	// Hide a column.
	if err := s.HideColumn("page_start"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Result()
	if res.ColumnIndex("page_start") >= 0 {
		t.Error("hidden column still present")
	}
	if len(res.Rows[0].Cells) != len(res.Columns) {
		t.Error("cells misaligned after hide")
	}
	if err := s.HideColumn("nope"); err == nil {
		t.Error("hiding missing column accepted")
	}
	if err := s.ShowColumn("page_start"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Result()
	if res.ColumnIndex("page_start") < 0 {
		t.Error("shown column missing")
	}
	if err := s.ShowColumn("page_start"); err == nil {
		t.Error("showing non-hidden column accepted")
	}
	// Sort persists across filters (presentation state carried).
	if err := s.Filter("year > 2000"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Result()
	if got := res.Rows[0].Cells[res.ColumnIndex("Authors")].Count(); got != 2 {
		t.Errorf("sort not carried: top author count = %d", got)
	}
}

// TestFigure2_ThreeActions exercises the three ways of exploring author
// information from a paper row (paper's Figure 2).
func TestFigure2_ThreeActions(t *testing.T) {
	s := newSession(t)
	s.Open("Papers")
	p1, _ := s.Graph().FindNode("Papers", "id", value.Int(1))
	nandi, _ := s.Graph().FindNode("Authors", "name", value.Str("Arnab Nandi"))

	// (a) Click an author's name → Single.
	if err := s.Single(nandi.ID); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Result()
	if res.NumRows() != 1 || res.Rows[0].Label != "Arnab Nandi" {
		t.Errorf("(a) = %+v", res.Rows)
	}

	// (b) Click the paper's author count → Seeall.
	s.Open("Papers")
	if err := s.Seeall(p1.ID, "Authors"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Result()
	if res.NumRows() != 2 {
		t.Errorf("(b) rows = %d", res.NumRows())
	}

	// (c) Click the pivot button on the Authors column → Pivot; authors
	// grouped across all rows, sortable by paper count.
	s.Open("Papers")
	if err := s.Pivot("Authors"); err != nil {
		t.Fatal(err)
	}
	if err := s.SortBy(etable.SortSpec{Column: "Papers", Desc: true}); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Result()
	if res.PrimaryType.Name != "Authors" {
		t.Errorf("(c) primary = %s", res.PrimaryType.Name)
	}
	// Jagadish has the most papers (3).
	if res.Rows[0].Label != "H. V. Jagadish" {
		t.Errorf("(c) top author = %q", res.Rows[0].Label)
	}
	if got := res.Rows[0].Cells[res.ColumnIndex("Papers")].Count(); got != 3 {
		t.Errorf("(c) top paper count = %d", got)
	}
}

func TestEntityTypes(t *testing.T) {
	s := newSession(t)
	types := s.EntityTypes()
	if len(types) != 7 { // 4 entities + keyword + year + country
		t.Fatalf("types = %d", len(types))
	}
	// Entities come first.
	for i, nt := range types {
		if i < 4 && nt.Kind != tgm.NodeEntity {
			t.Errorf("type %d = %v (%v)", i, nt.Name, nt.Kind)
		}
	}
}

func TestLookupValue(t *testing.T) {
	s := newSession(t)
	if _, err := s.LookupValue("x", "year"); err == nil {
		t.Error("lookup before open accepted")
	}
	s.Open("Papers")
	v, err := s.LookupValue("Making database systems usable", "year")
	if err != nil || v.AsInt() != 2007 {
		t.Errorf("lookup = %v, %v", v, err)
	}
	if _, err := s.LookupValue("Nope", "year"); err == nil {
		t.Error("missing row accepted")
	}
	if _, err := s.LookupValue("Making database systems usable", "nope"); err == nil {
		t.Error("missing attr accepted")
	}
}

func TestHistoryDescriptions(t *testing.T) {
	s := newSession(t)
	s.Open("Papers")
	s.Filter("year > 2005")
	s.SortBy(etable.SortSpec{Column: "Authors", Desc: true})
	h := s.History()
	if len(h) != 3 {
		t.Fatalf("history = %d", len(h))
	}
	if !strings.Contains(h[1].Action, "Filter 'Papers' table by (year > 2005)") {
		t.Errorf("filter action = %q", h[1].Action)
	}
	if !strings.Contains(h[2].Action, "Sort table by # of Authors") {
		t.Errorf("sort action = %q", h[2].Action)
	}
}

// TestDisjunctiveFilter exercises the §6.1 note that disjunctions are a
// straightforward extension of the conjunctive filter window — the
// condition language supports them directly.
func TestDisjunctiveFilter(t *testing.T) {
	s := newSession(t)
	s.Open("Papers")
	if err := s.Filter("year = 2007 OR year = 2014"); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Result()
	if res.NumRows() != 2 {
		t.Errorf("disjunctive filter rows = %d, want 2", res.NumRows())
	}
	if err := s.Filter("title like '%SQL%' OR title like '%usable%'"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Result()
	if res.NumRows() != 2 {
		t.Errorf("combined rows = %d, want 2", res.NumRows())
	}
}

// TestExecutorReuseAcrossRevert checks that reverting and re-running a
// query is served from the session executor's match cache (the §9
// future-work extension) — the result is identical, and fast.
func TestExecutorReuseAcrossRevert(t *testing.T) {
	s := newSession(t)
	s.Open("Papers")
	s.Filter("year > 2005")
	first, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	s.Filter("year < 2012")
	if err := s.Revert(1); err != nil {
		t.Fatal(err)
	}
	again, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if first.NumRows() != again.NumRows() {
		t.Errorf("revert changed results: %d vs %d", first.NumRows(), again.NumRows())
	}
}

// TestConcurrentSessionActions hammers one session from many goroutines
// with mixed presentation and query actions; with -race this verifies
// the per-session mutex. Correctness of the end state is loose (actions
// interleave), but every individual call must be internally consistent.
func TestConcurrentSessionActions(t *testing.T) {
	s := newSession(t)
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch (w + i) % 5 {
				case 0:
					_ = s.Open("Papers")
				case 1:
					_ = s.Filter("year > 2005")
				case 2:
					if res, err := s.Result(); err == nil && res.NumRows() == 0 {
						t.Error("empty result for Papers")
						return
					}
				case 3:
					_ = s.SortBy(etable.SortSpec{Attr: "year", Desc: true})
				case 4:
					st, err := s.State()
					if err != nil {
						t.Error(err)
						return
					}
					if st.Cursor >= 0 && st.Result == nil {
						t.Error("state with open table but nil result")
						return
					}
					if st.Cursor >= len(st.History) {
						t.Errorf("cursor %d outside history of %d", st.Cursor, len(st.History))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSharedCacheAcrossSessions checks NewShared wiring: two sessions
// over one cache, the second pays no misses for a pattern the first
// already executed.
func TestSharedCacheAcrossSessions(t *testing.T) {
	res, err := testdb.Figure3Translation()
	if err != nil {
		t.Fatal(err)
	}
	cache := etable.NewCache(128)
	s1 := NewShared(res.Schema, res.Instance, cache)
	s2 := NewShared(res.Schema, res.Instance, cache)
	if err := s1.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Filter("year > 2010"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Result(); err != nil {
		t.Fatal(err)
	}
	misses := cache.Misses()
	if err := s2.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Filter("year > 2010"); err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if cache.Misses() != misses {
		t.Errorf("second session recomputed: misses %d → %d", misses, cache.Misses())
	}
	if r2.NumRows() != 4 {
		t.Errorf("rows = %d, want 4", r2.NumRows())
	}
}

// TestPresentationMemo checks that presentation-identical states share
// one Result object across Revert, and that different presentation
// states do not.
func TestPresentationMemo(t *testing.T) {
	s := newSession(t)
	s.Open("Papers")
	first, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	s.SortBy(etable.SortSpec{Attr: "year", Desc: true})
	sorted, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if sorted == first {
		t.Error("sorted result aliases unsorted memo entry")
	}
	if err := s.Revert(0); err != nil {
		t.Fatal(err)
	}
	again, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Error("revert to identical presentation state missed the memo")
	}
}
