package session

import (
	"context"
	"errors"
	"testing"

	"repro/internal/etable"
	"repro/internal/exec"
	"repro/internal/ops"
	"repro/internal/testdb"
)

func newExecSession(t testing.TB, pool *exec.Pool, parallelism int) *Session {
	t.Helper()
	res, err := testdb.Figure3Translation()
	if err != nil {
		t.Fatal(err)
	}
	return NewWithExec(res.Schema, res.Instance,
		etable.NewCache(etable.DefaultCacheEntries), pool, parallelism)
}

// TestParallelSessionMatchesSerial asserts a pool-backed session renders
// the same results as a serial one across a mixed action sequence.
func TestParallelSessionMatchesSerial(t *testing.T) {
	par := newExecSession(t, exec.NewPool(4), 4)
	ser := newExecSession(t, nil, 0)
	script := func(s *Session) *etable.Result {
		t.Helper()
		for _, step := range []func() error{
			func() error { return s.Open("Papers") },
			func() error { return s.Filter("year > 2000") },
			func() error { return s.Pivot("Authors") },
			func() error { return s.Revert(1) },
		} {
			if err := step(); err != nil {
				t.Fatal(err)
			}
		}
		res, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rp, rs := script(par), script(ser)
	if rp.NumRows() != rs.NumRows() || len(rp.Columns) != len(rs.Columns) {
		t.Fatalf("parallel %dx%d vs serial %dx%d",
			rp.NumRows(), len(rp.Columns), rs.NumRows(), len(rs.Columns))
	}
	for ri := range rs.Rows {
		if rp.Rows[ri].Node != rs.Rows[ri].Node {
			t.Fatalf("row %d: node %v vs %v", ri, rp.Rows[ri].Node, rs.Rows[ri].Node)
		}
	}
}

// TestApplyCtxCancellation asserts a canceled request context fails the
// op with context.Canceled and leaves the session unchanged — the
// abandoned-HTTP-request path.
func TestApplyCtxCancellation(t *testing.T) {
	s := newExecSession(t, exec.NewPool(2), 2)
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Pivot resolves its column against the rendered result, so it
	// executes the pattern and observes the cancellation.
	err := s.ApplyCtx(ctx, ops.Pivot("Authors"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ApplyCtx err = %v, want Canceled", err)
	}
	if got := len(s.History()); got != 1 {
		t.Errorf("history grew to %d entries after canceled op", got)
	}
	// Pipelines roll back wholesale (the filter applies, then the pivot
	// cancels).
	err = s.ApplyPipelineCtx(ctx, ops.Pipeline{ops.Filter("year > 2000"), ops.Pivot("Authors")})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ApplyPipelineCtx err = %v, want Canceled", err)
	}
	if got := len(s.History()); got != 1 {
		t.Errorf("history grew to %d entries after canceled pipeline", got)
	}
	// The same op succeeds once the context is live.
	if err := s.ApplyCtx(context.Background(), ops.Pivot("Authors")); err != nil {
		t.Fatal(err)
	}
	// ResultCtx propagates cancellation for uncached patterns.
	s2 := newExecSession(t, exec.NewPool(2), 2)
	if err := s2.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ResultCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("ResultCtx err = %v, want Canceled", err)
	}
}

// TestBudgetOverrideViaContext asserts exec.WithBudget on the request
// context overrides the session's default budget (observable only
// indirectly: execution still succeeds and stays equivalent).
func TestBudgetOverrideViaContext(t *testing.T) {
	s := newExecSession(t, exec.NewPool(4), 1) // default serial
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	ctx := exec.WithBudget(context.Background(), 4)
	res, err := s.ResultCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() == 0 {
		t.Fatal("no rows")
	}
	opt := s.execOptions(ctx)
	if opt.Parallelism != 4 {
		t.Errorf("context budget = %d, want 4", opt.Parallelism)
	}
	if opt := s.execOptions(context.Background()); opt.Parallelism != 1 {
		t.Errorf("default budget = %d, want 1", opt.Parallelism)
	}
}
