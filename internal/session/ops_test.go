package session

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/etable"
	"repro/internal/ops"
	"repro/internal/testdb"
	"repro/internal/value"
)

// renderState flattens a State into a canonical string: pattern, sorted
// presentation, every visible cell, and the history. Two sessions with
// equal renderings are observably identical to any client.
func renderState(t *testing.T, s *Session) string {
	t.Helper()
	st, err := s.State()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cursor=%d\n", st.Cursor)
	for i, h := range st.History {
		fmt.Fprintf(&b, "h%d: %s | %s\n", i, h.Action, h.Pattern)
	}
	if st.Pattern == nil {
		return b.String()
	}
	fmt.Fprintf(&b, "pattern: %s\n", st.Pattern)
	for _, c := range st.Result.Columns {
		fmt.Fprintf(&b, "col: %s (%s)\n", c.Name, c.Kind)
	}
	for _, row := range st.Result.Rows {
		fmt.Fprintf(&b, "row %d %q:", row.Node, row.Label)
		for ci := range st.Result.Columns {
			cell := &row.Cells[ci]
			if st.Result.Columns[ci].Kind == etable.ColBase {
				fmt.Fprintf(&b, " %s", cell.Value.Format())
			} else {
				fmt.Fprintf(&b, " [")
				for _, ref := range cell.Refs {
					fmt.Fprintf(&b, "%d:%s,", ref.ID, ref.Label)
				}
				fmt.Fprintf(&b, "]")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// sessionsOverOneGraph builds n sessions over a single translation:
// node ids are only stable within one translated instance graph, so
// state comparisons across sessions require a shared graph (exactly the
// server's situation — every session of a server shares its TGDB).
func sessionsOverOneGraph(t testing.TB, n int) []*Session {
	t.Helper()
	res, err := testdb.Figure3Translation()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Session, n)
	for i := range out {
		out[i] = New(res.Schema, res.Instance)
	}
	return out
}

// TestApplyEquivalence drives the same exploration twice — once through
// the imperative methods, once through Apply with explicit ops — and
// requires byte-identical rendered states at every step.
func TestApplyEquivalence(t *testing.T) {
	ss := sessionsOverOneGraph(t, 2)
	imp, dec := ss[0], ss[1]

	type step struct {
		name string
		impF func() error
		op   ops.Op
	}
	p1, ok := imp.Graph().FindNode("Papers", "id", value.Int(1))
	if !ok {
		t.Fatal("paper 1 missing")
	}
	steps := []step{
		{"open", func() error { return imp.Open("Papers") }, ops.Open("Papers")},
		{"filter", func() error { return imp.Filter("year > 2005") }, ops.Filter("year > 2005")},
		{"sort", func() error { return imp.SortBy(etable.SortSpec{Attr: "year", Desc: true}) }, ops.SortByAttr("year", true)},
		{"hide", func() error { return imp.HideColumn("page_start") }, ops.Hide("page_start")},
		{"show", func() error { return imp.ShowColumn("page_start") }, ops.Show("page_start")},
		{"revert", func() error { return imp.Revert(1) }, ops.Revert(1)},
		{"neighbor", func() error { return imp.FilterByNeighbor("Authors", "name = 'H. V. Jagadish'") },
			ops.FilterByNeighbor("Authors", "name = 'H. V. Jagadish'")},
		{"pivot", func() error { return imp.Pivot("Authors") }, ops.Pivot("Authors")},
		{"open2", func() error { return imp.Open("Papers") }, ops.Open("Papers")},
		{"seeall", func() error { return imp.Seeall(p1.ID, "Authors") }, ops.Seeall(int64(p1.ID), "Authors")},
		{"single", func() error { return imp.Single(p1.ID) }, ops.Single(int64(p1.ID))},
	}
	for _, s := range steps {
		if err := s.impF(); err != nil {
			t.Fatalf("%s (imperative): %v", s.name, err)
		}
		if err := dec.Apply(s.op); err != nil {
			t.Fatalf("%s (op): %v", s.name, err)
		}
		if got, want := renderState(t, dec), renderState(t, imp); got != want {
			t.Fatalf("%s: states diverge\nimperative:\n%s\nops:\n%s", s.name, want, got)
		}
	}
}

func TestApplyErrorCodes(t *testing.T) {
	s := newSession(t)
	// Validation failure: invalid_op, session untouched.
	err := s.Apply(ops.Open("Nope"))
	var oe *ops.Error
	if !errors.As(err, &oe) || oe.Code != ops.CodeInvalidOp {
		t.Fatalf("open Nope err = %v", err)
	}
	// State-dependent failure: op_failed.
	err = s.Apply(ops.Filter("year > 2000"))
	if !errors.As(err, &oe) || oe.Code != ops.CodeOpFailed {
		t.Fatalf("filter before open err = %v", err)
	}
	if len(s.History()) != 0 {
		t.Error("failed ops left history entries")
	}
}

func TestApplyPipelineAtomic(t *testing.T) {
	s := newSession(t)
	if err := s.Apply(ops.Open("Papers")); err != nil {
		t.Fatal(err)
	}
	before := renderState(t, s)

	// Op 2 fails at apply time (no such column): nothing may stick.
	err := s.ApplyPipeline(ops.Pipeline{
		ops.Filter("year > 2005"),
		ops.Pivot("NoSuchColumn"),
		ops.Filter("year > 2010"),
	})
	var oe *ops.Error
	if !errors.As(err, &oe) || oe.Code != ops.CodeOpFailed || oe.OpIndex != 1 {
		t.Fatalf("err = %v", err)
	}
	if got := renderState(t, s); got != before {
		t.Errorf("failed pipeline mutated the session:\nbefore:\n%s\nafter:\n%s", before, got)
	}

	// A fully valid pipeline applies in order.
	if err := s.ApplyPipeline(ops.Pipeline{
		ops.Filter("year > 2005"),
		ops.Pivot("Authors"),
		ops.SortByCount("Papers", true),
	}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.PrimaryType.Name != "Authors" {
		t.Errorf("primary = %s", res.PrimaryType.Name)
	}
	if len(s.History()) != 4 {
		t.Errorf("history = %d", len(s.History()))
	}
}

// TestApplyPipelineRollbackAfterRevert covers the subtle rollback case:
// the pipeline starts from a reverted cursor, so its pushes overwrite
// the redo suffix in the shared backing array — rollback must restore
// the overwritten entries too.
func TestApplyPipelineRollbackAfterRevert(t *testing.T) {
	s := newSession(t)
	for _, op := range []ops.Op{ops.Open("Papers"), ops.Filter("year > 2005"), ops.Filter("year < 2014")} {
		if err := s.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Apply(ops.Revert(0)); err != nil {
		t.Fatal(err)
	}
	before := renderState(t, s)

	err := s.ApplyPipeline(ops.Pipeline{ops.Filter("year = 2011"), ops.Pivot("NoSuchColumn")})
	if err == nil {
		t.Fatal("pipeline succeeded unexpectedly")
	}
	if got := renderState(t, s); got != before {
		t.Errorf("rollback lost the redo suffix:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	// The redo suffix must still be revertible-to.
	if err := s.Revert(2); err != nil {
		t.Fatalf("revert into restored suffix: %v", err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 5 { // year > 2005 AND year < 2014: all but the 2014 paper
		t.Errorf("rows after revert = %d", res.NumRows())
	}
}

// TestRevertEdgeCases exercises the satellite checklist: revert to 0,
// revert forward after branching, revert past a hidden-column entry, and
// memo consistency — through both the imperative path and Apply.
func TestRevertEdgeCases(t *testing.T) {
	for _, mode := range []string{"imperative", "ops"} {
		t.Run(mode, func(t *testing.T) {
			s := newSession(t)
			do := func(op ops.Op, viaMethod func() error) {
				t.Helper()
				var err error
				if mode == "ops" {
					err = s.Apply(op)
				} else {
					err = viaMethod()
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			do(ops.Open("Papers"), func() error { return s.Open("Papers") })
			do(ops.Filter("year > 2005"), func() error { return s.Filter("year > 2005") })
			do(ops.Hide("page_start"), func() error { return s.HideColumn("page_start") })
			do(ops.Filter("year > 2010"), func() error { return s.Filter("year > 2010") })

			// Revert to 0: full table, all columns visible.
			do(ops.Revert(0), func() error { return s.Revert(0) })
			res, err := s.Result()
			if err != nil {
				t.Fatal(err)
			}
			if res.NumRows() != 6 || res.ColumnIndex("page_start") < 0 {
				t.Errorf("revert to 0: rows=%d page_start=%d", res.NumRows(), res.ColumnIndex("page_start"))
			}

			// Revert forward (redo) past the hidden-column entry.
			do(ops.Revert(3), func() error { return s.Revert(3) })
			res, err = s.Result()
			if err != nil {
				t.Fatal(err)
			}
			if res.NumRows() != 4 || res.ColumnIndex("page_start") >= 0 {
				t.Errorf("redo to 3: rows=%d page_start=%d", res.NumRows(), res.ColumnIndex("page_start"))
			}

			// Revert to the hidden-column entry itself (year > 2005
			// matches all 6 papers; only the hide distinguishes it).
			do(ops.Revert(2), func() error { return s.Revert(2) })
			res, err = s.Result()
			if err != nil {
				t.Fatal(err)
			}
			if res.NumRows() != 6 || res.ColumnIndex("page_start") >= 0 {
				t.Errorf("revert to 2: rows=%d page_start=%d", res.NumRows(), res.ColumnIndex("page_start"))
			}

			// Branch: a new action from entry 2 truncates entry 3.
			do(ops.Filter("year = 2011"), func() error { return s.Filter("year = 2011") })
			if got := len(s.History()); got != 4 {
				t.Fatalf("history after branch = %d", got)
			}
			if err := s.Revert(4); err == nil {
				t.Error("revert past truncated history accepted")
			}
			// Revert forward within the new branch still works.
			do(ops.Revert(3), func() error { return s.Revert(3) })
			res, err = s.Result()
			if err != nil {
				t.Fatal(err)
			}
			if res.NumRows() != 3 {
				t.Errorf("branch tip rows = %d", res.NumRows())
			}

			// Memo consistency: bouncing between presentation-identical
			// states returns the identical *Result, and states with
			// different presentations never alias.
			do(ops.Revert(0), func() error { return s.Revert(0) })
			r0a, _ := s.Result()
			do(ops.Revert(2), func() error { return s.Revert(2) })
			r2, _ := s.Result()
			do(ops.Revert(0), func() error { return s.Revert(0) })
			r0b, _ := s.Result()
			if r0a != r0b {
				t.Error("presentation memo missed on revert round trip")
			}
			if r0a == r2 {
				t.Error("distinct presentation states alias one result")
			}
			if r2.ColumnIndex("page_start") >= 0 {
				t.Error("memoized hidden-column state shows the hidden column")
			}
		})
	}
}

// TestExportReplayGolden is the acceptance golden test: a session with
// filters, pivots, hides, branching reverts, and node-anchored ops
// exports a log whose replay on a fresh session reproduces the identical
// rendered state — and the log round-trips through JSON, as it does over
// /api/v1 history → replay.
func TestExportReplayGolden(t *testing.T) {
	ss := sessionsOverOneGraph(t, 3)
	s, fresh, dirty := ss[0], ss[1], ss[2]
	p1, _ := s.Graph().FindNode("Papers", "id", value.Int(1))
	script := ops.Pipeline{
		ops.Open("Papers"),
		ops.Filter("year > 2005"),
		ops.SortByAttr("year", true),
		ops.Hide("page_start"),
		ops.Pivot("Authors"),
		ops.Open("Papers"),
		ops.Seeall(int64(p1.ID), "Authors"),
		ops.Single(int64(p1.ID)),
	}
	for _, op := range script {
		if err := s.Apply(op); err != nil {
			t.Fatalf("%+v: %v", op, err)
		}
	}
	// Branch: revert, then a new action truncating the suffix.
	if err := s.Apply(ops.Revert(3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(ops.Filter("year < 2014")); err != nil {
		t.Fatal(err)
	}
	// Leave the cursor mid-history.
	if err := s.Apply(ops.Revert(2)); err != nil {
		t.Fatal(err)
	}

	log := s.Export()
	if len(log.Ops) != 5 || log.Cursor != 2 {
		t.Fatalf("export = %d ops, cursor %d", len(log.Ops), log.Cursor)
	}
	// The log survives JSON round-tripping (the wire path).
	enc, err := json.Marshal(log)
	if err != nil {
		t.Fatal(err)
	}
	var wire Log
	if err := json.Unmarshal(enc, &wire); err != nil {
		t.Fatal(err)
	}

	if err := fresh.Replay(wire); err != nil {
		t.Fatal(err)
	}
	if got, want := renderState(t, fresh), renderState(t, s); got != want {
		t.Errorf("replayed state differs\nwant:\n%s\ngot:\n%s", want, got)
	}

	// Replay is also reset semantics: replaying onto a dirty session
	// discards its previous state first.
	if err := dirty.Apply(ops.Open("Conferences")); err != nil {
		t.Fatal(err)
	}
	if err := dirty.Replay(wire); err != nil {
		t.Fatal(err)
	}
	if got, want := renderState(t, dirty), renderState(t, s); got != want {
		t.Errorf("replay onto dirty session differs")
	}
}

func TestReplayRejectsBadLogs(t *testing.T) {
	s := newSession(t)
	if err := s.Apply(ops.Open("Papers")); err != nil {
		t.Fatal(err)
	}
	before := renderState(t, s)

	// Invalid op in the log: rejected before any state change.
	err := s.Replay(Log{Ops: []ops.Op{ops.Open("Nope")}, Cursor: 0})
	var oe *ops.Error
	if !errors.As(err, &oe) || oe.Code != ops.CodeInvalidOp {
		t.Errorf("bad-op replay err = %v", err)
	}
	// Out-of-range cursor.
	if err := s.Replay(Log{Ops: []ops.Op{ops.Open("Papers")}, Cursor: 5}); err == nil {
		t.Error("out-of-range cursor accepted")
	}
	// Apply-time failure mid-log.
	err = s.Replay(Log{Ops: []ops.Op{ops.Open("Papers"), ops.Pivot("NoSuch")}, Cursor: 1})
	if !errors.As(err, &oe) || oe.OpIndex != 1 {
		t.Errorf("mid-log failure err = %v", err)
	}
	if got := renderState(t, s); got != before {
		t.Error("failed replay mutated the session")
	}

	// Empty log with cursor -1 resets the session.
	if err := s.Replay(Log{Cursor: -1}); err != nil {
		t.Fatal(err)
	}
	if len(s.History()) != 0 || s.Cursor() != -1 {
		t.Error("empty-log replay did not reset")
	}
}
