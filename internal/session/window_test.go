package session

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/etable"
	"repro/internal/graphrel"
	"repro/internal/testdb"
)

// newSharedSession builds a session over the Figure 3 corpus with an
// externally visible shared cache, so tests can observe pinning.
func newSharedSession(t testing.TB) (*Session, *etable.Cache) {
	t.Helper()
	res, err := testdb.Figure3Translation()
	if err != nil {
		t.Fatal(err)
	}
	cache := etable.NewCache(64)
	return NewShared(res.Schema, res.Instance, cache), cache
}

// TestWindowMatchesFullRender: every window of the presented result is
// exactly the corresponding slice of the full render — across plain,
// sorted, and hidden-column presentations.
func TestWindowMatchesFullRender(t *testing.T) {
	s, _ := newSharedSession(t)
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	stages := []struct {
		name  string
		mutch func() error
	}{
		{"open", func() error { return nil }},
		{"sorted", func() error { return s.SortBy(etable.SortSpec{Attr: "year", Desc: true}) }},
		{"hidden", func() error { return s.HideColumn("year") }},
	}
	for _, st := range stages {
		if err := st.mutch(); err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		full, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		total := full.NumRows()
		if full.Total() != total || full.Offset != 0 {
			t.Fatalf("%s: full render window metadata [%d +%d of %d]", st.name, full.Offset, total, full.Total())
		}
		for _, win := range [][2]int{{0, 2}, {1, 3}, {total - 1, 10}, {total + 5, 2}, {0, 0}} {
			res, err := s.WindowCtx(ctx, win[0], win[1])
			if err != nil {
				t.Fatalf("%s window %v: %v", st.name, win, err)
			}
			start := win[0]
			if start > total {
				start = total
			}
			end := total
			if win[1] >= 0 && start+win[1] < total {
				end = start + win[1]
			}
			if res.Total() != total || res.Offset != start || len(res.Rows) != end-start {
				t.Fatalf("%s window %v: got [%d +%d of %d], want [%d +%d of %d]",
					st.name, win, res.Offset, len(res.Rows), res.Total(), start, end-start, total)
			}
			if len(res.Columns) != len(full.Columns) {
				t.Fatalf("%s window %v: %d columns, want %d", st.name, win, len(res.Columns), len(full.Columns))
			}
			for i, row := range res.Rows {
				want := full.Rows[start+i]
				if row.Node != want.Node || row.Label != want.Label {
					t.Fatalf("%s window %v row %d: %d/%q, want %d/%q",
						st.name, win, i, row.Node, row.Label, want.Node, want.Label)
				}
				for ci := range want.Cells {
					if row.Cells[ci].Count() != want.Cells[ci].Count() {
						t.Fatalf("%s window %v row %d cell %d ref count differs", st.name, win, i, ci)
					}
				}
			}
			// Re-reading the same window hits the memo (same pointer).
			again, err := s.WindowCtx(ctx, win[0], win[1])
			if err != nil {
				t.Fatal(err)
			}
			if again != res {
				t.Errorf("%s window %v: not served from the window memo", st.name, win)
			}
		}
	}
}

// TestWindowPinsMatchedRelation: rendering any window pins the matched
// relation in the shared cache; cycling through more presentation
// states than the memo holds releases the oldest pins, so the pinned
// set stays bounded by memoEntries.
func TestWindowPinsMatchedRelation(t *testing.T) {
	s, cache := newSharedSession(t)
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WindowCtx(context.Background(), 0, 2); err != nil {
		t.Fatal(err)
	}
	if got := cache.PinnedCount(); got != 1 {
		t.Fatalf("PinnedCount after first window = %d, want 1", got)
	}
	// Hiding a column is a per-window concern, not a new presentation:
	// the prepared row order and pin are reused, not re-prepared.
	if err := s.HideColumn("year"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WindowCtx(context.Background(), 0, 2); err != nil {
		t.Fatal(err)
	}
	if got := cache.PinnedCount(); got != 1 {
		t.Fatalf("PinnedCount after hide = %d, want 1 (hide must not re-prepare)", got)
	}
	// Each distinct filter is a new presentation state; far more than
	// memoEntries of them must not pin more than memoEntries relations.
	for i := 0; i < memoEntries+6; i++ {
		if err := s.Filter(fmt.Sprintf("year > %d", 1990+i)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.WindowCtx(context.Background(), 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := cache.PinnedCount(); got > memoEntries {
		t.Fatalf("PinnedCount = %d, want <= %d (evicted memo entries must release their pins)", got, memoEntries)
	}
}

// TestCloseReleasesPins: closing a session (what the server does on
// eviction) releases every pinned relation, and later reads on the
// closed session keep working without pinning anew.
func TestCloseReleasesPins(t *testing.T) {
	s, cache := newSharedSession(t)
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WindowCtx(context.Background(), 0, 2); err != nil {
		t.Fatal(err)
	}
	if cache.PinnedCount() != 1 {
		t.Fatalf("PinnedCount = %d, want 1", cache.PinnedCount())
	}
	s.Close()
	s.Close() // idempotent
	if cache.PinnedCount() != 0 {
		t.Fatalf("PinnedCount after Close = %d, want 0", cache.PinnedCount())
	}
	// A closed session still serves reads — and doesn't re-pin.
	if err := s.Filter("year > 2000"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WindowCtx(context.Background(), 0, 2); err != nil {
		t.Fatal(err)
	}
	if cache.PinnedCount() != 0 {
		t.Fatalf("closed session pinned %d relations", cache.PinnedCount())
	}
}

// TestStateWindowCtx: the snapshot carries the windowed result plus
// consistent history, and a session with no open table still snapshots.
func TestStateWindowCtx(t *testing.T) {
	s, _ := newSharedSession(t)
	st, err := s.StateWindowCtx(context.Background(), 0, 5)
	if err != nil || st.Result != nil || st.Cursor != -1 {
		t.Fatalf("empty session snapshot: %+v, %v", st, err)
	}
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	if err := s.Filter("year > 2000"); err != nil {
		t.Fatal(err)
	}
	st, err = s.StateWindowCtx(context.Background(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Result == nil || st.Result.Offset != 1 || len(st.Result.Rows) > 2 {
		t.Fatalf("windowed snapshot: %+v", st.Result)
	}
	if len(st.History) != 2 || st.Cursor != 1 {
		t.Fatalf("history %d entries, cursor %d", len(st.History), st.Cursor)
	}
}

// TestSessionMaxRows pins the window side of the max-rows guard: an
// unbounded read of a table larger than the cap fails up front with a
// structured *graphrel.RowLimitError (before any cell is transformed),
// while metadata reads and paging within the cap are unaffected.
func TestSessionMaxRows(t *testing.T) {
	s, _ := newSharedSession(t)
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	meta, err := s.WindowCtx(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := meta.Total()
	if total < 2 {
		t.Fatalf("fixture too small: %d rows", total)
	}
	s.SetMaxRows(total - 1)
	var rl *graphrel.RowLimitError
	if _, err := s.WindowCtx(ctx, 0, -1); !errors.As(err, &rl) || rl.Limit != total-1 {
		t.Fatalf("unbounded read under cap %d: err = %v", total-1, err)
	}
	if _, err := s.WindowCtx(ctx, 0, total-1); err != nil {
		t.Fatalf("read within cap: %v", err)
	}
	// An unbounded tail read is effectively small — allowed.
	if res, err := s.WindowCtx(ctx, total-1, -1); err != nil || len(res.Rows) != 1 {
		t.Fatalf("tail window: %v (%d rows)", err, len(res.Rows))
	}
	// Metadata-only reads never trip the cap, and the error surfaces
	// through snapshots identically.
	if _, err := s.WindowCtx(ctx, 0, 0); err != nil {
		t.Fatalf("metadata read: %v", err)
	}
	if _, err := s.StateWindowCtx(ctx, 0, -1); !errors.As(err, &rl) {
		t.Fatalf("snapshot: err = %v", err)
	}
	// Lifting the cap restores unbounded reads.
	s.SetMaxRows(0)
	if _, err := s.WindowCtx(ctx, 0, -1); err != nil {
		t.Fatalf("uncapped read: %v", err)
	}
}

// TestSessionWindowRecycling: with recycling on, paging through more
// distinct windows than the memo holds (forcing evictions that feed
// earlier windows' arenas into later materializations) still yields
// windows identical to an untouched session's full render. Each result
// is verified before the next session call, per the recycling contract.
func TestSessionWindowRecycling(t *testing.T) {
	base, _ := newSharedSession(t)
	if err := base.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	full, err := base.Result()
	if err != nil {
		t.Fatal(err)
	}
	total := full.NumRows()
	if total < 2 {
		t.Fatalf("fixture too small: %d rows", total)
	}

	s, _ := newSharedSession(t)
	s.SetWindowRecycling(true)
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	check := func(label string, res *etable.Result, start, end int) {
		t.Helper()
		if len(res.Rows) != end-start {
			t.Fatalf("%s: %d rows, want %d", label, len(res.Rows), end-start)
		}
		for i, row := range res.Rows {
			want := full.Rows[start+i]
			if row.Node != want.Node || row.Label != want.Label {
				t.Fatalf("%s row %d: %d/%q, want %d/%q", label, i, row.Node, row.Label, want.Node, want.Label)
			}
			for ci := range want.Cells {
				if row.Cells[ci].Count() != want.Cells[ci].Count() {
					t.Fatalf("%s row %d cell %d: ref count differs", label, i, ci)
				}
				if res.Columns[ci].Kind == etable.ColBase &&
					row.Cells[ci].Value.Format() != want.Cells[ci].Value.Format() {
					t.Fatalf("%s row %d cell %d: %q, want %q", label, i, ci,
						row.Cells[ci].Value.Format(), want.Cells[ci].Value.Format())
				}
			}
		}
	}
	// Varying limits make each window a distinct memo key, so rounds
	// past windowMemoEntries evict — and recycle — the oldest windows.
	for round := 0; round < 3; round++ {
		for l := 1; l <= windowMemoEntries+4; l++ {
			res, err := s.WindowCtx(ctx, 0, l)
			if err != nil {
				t.Fatal(err)
			}
			check(fmt.Sprintf("round %d limit %d", round, l), res, 0, min(l, total))
		}
	}
	// Close recycles the remaining memoized windows; the session still
	// serves correct (freshly materialized) reads afterwards.
	s.Close()
	res, err := s.WindowCtx(ctx, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	check("after close", res, 0, min(2, total))
}

// TestSortValidationWithoutRender: sort ops validate against the
// visible columns without materializing rows, and sorting by a hidden
// column still fails.
func TestSortValidationWithoutRender(t *testing.T) {
	s, _ := newSharedSession(t)
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	if err := s.HideColumn("year"); err != nil {
		t.Fatal(err)
	}
	if err := s.SortBy(etable.SortSpec{Attr: "year"}); err == nil {
		t.Error("sorting by a hidden column must fail")
	}
	if err := s.SortBy(etable.SortSpec{Attr: "title"}); err != nil {
		t.Errorf("sorting by a visible column failed: %v", err)
	}
}

// TestSortVariantsShareOnePreparedPresentation: sorting is a view over
// the memoized base presentation, not a new presentation state — a
// session toggling through many sort orders of one pattern holds ONE
// memo entry and ONE cache pin, and each variant's windows render the
// right order.
func TestSortVariantsShareOnePreparedPresentation(t *testing.T) {
	s, cache := newSharedSession(t)
	if err := s.Open("Papers"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base, err := s.WindowCtx(ctx, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	total := base.NumRows()

	specs := []etable.SortSpec{
		{Attr: "year"},
		{Attr: "year", Desc: true},
		{Attr: "title"},
		{Attr: "title", Desc: true},
	}
	for _, spec := range specs {
		if err := s.SortBy(spec); err != nil {
			t.Fatal(err)
		}
		res, err := s.WindowCtx(ctx, 0, -1)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != total {
			t.Fatalf("sort %+v: %d rows, want %d", spec, res.NumRows(), total)
		}
		if err := res.ValidateSort(spec); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.memo); got != 1 {
		t.Fatalf("%d memo entries across %d sort variants, want 1 (sorts must share the prepared presentation)", got, len(specs))
	}
	if got := cache.PinnedCount(); got != 1 {
		t.Fatalf("PinnedCount = %d across sort variants, want 1", got)
	}
	for _, pe := range s.memo {
		if got := len(pe.sorted); got != len(specs) {
			t.Fatalf("%d memoized sorted views, want %d", got, len(specs))
		}
	}
	// Reverting through every sorted state (and the unsorted open) hits
	// the memoized views: still one entry, one pin.
	for i := len(specs); i >= 0; i-- {
		if err := s.Revert(i); err != nil {
			t.Fatal(err)
		}
		if _, err := s.WindowCtx(ctx, 0, 2); err != nil {
			t.Fatal(err)
		}
	}
	if got := cache.PinnedCount(); got != 1 {
		t.Fatalf("PinnedCount after reverts = %d, want 1", got)
	}
}
