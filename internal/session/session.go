// Package session implements the user-level actions of the paper's §6.1
// (Open, Filter, Pivot, Single, Seeall, plus Sort and Hide/Show) and the
// history view of Figure 9: every action appends an entry holding the
// resulting query pattern, and users can revert to any prior state.
//
// Each user-level action translates into the primitive operators of
// internal/etable exactly as the paper specifies:
//
//	Open(τk)            = Initiate(τk)
//	Filter(C)           = Select(C)
//	Pivot(neighbor ρl)  = Add(ρl)
//	Pivot(particip. τk) = Shift(τk)
//	Single(vk)          = Select(key=vk, Initiate(type(vk)))
//	Seeall(vk, ρl)      = Add(ρl, Select(key=vk))        (neighbor col)
//	Seeall(vk, τl)      = Shift(τl, Select(key=vk))      (participating col)
//
// A Session is safe for concurrent use: one mutex serializes actions and
// snapshots per session, so the application server can admit overlapping
// requests for the same session without a global lock. Expensive
// execution state is NOT per-session — matching runs through an
// etable.Executor whose cache may be shared across every session of a
// server (NewShared).
//
// Presentation is windowed: the session keeps a small memo of prepared
// presentations (etable.Presentation — row order, sort, column layout;
// no cells), each pinning its matched relation in the shared cache
// (etable.Pin), plus a bounded memo of materialized row windows per
// presentation, keyed by (offset, limit). A page fetch therefore costs
// O(window): the match comes from the pinned relation, the row order
// and groupings from the prepared presentation, and only the requested
// rows are transformed. Pins are released when the presentation memo
// evicts an entry, so the memory pinned beyond the cache capacity is
// bounded by sessions × memoEntries relations.
//
// Every mutation flows through the declarative operation protocol of
// internal/ops: Apply executes one validated ops.Op, ApplyPipeline
// executes a batch atomically, and the imperative methods (Open, Filter,
// …) are thin wrappers that build the corresponding op. Each history
// entry records the op that produced it, so Export serializes a session
// to a replayable operation log and Replay deterministically rebuilds
// identical state on a fresh session over the same graph.
package session

import (
	"cmp"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/etable"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/graphrel"
	"repro/internal/ops"
	"repro/internal/tgm"
	"repro/internal/value"
)

// Entry is one history item: the operation that produced it, its
// human-readable description, and the query pattern in effect after it.
type Entry struct {
	// Op is the declarative operation that created this entry. Revert
	// ops never create entries (they only move the cursor), so a
	// history is exactly its ops replayed in order.
	Op ops.Op
	// Action describes the user action, e.g. "Open 'Papers' table".
	Action string
	// Pattern is the query pattern after the action (nil only for the
	// initial empty state).
	Pattern *etable.Pattern
	// Sort and Hidden capture the presentation state after the action.
	Sort   *etable.SortSpec
	Hidden map[string]bool
}

// memoEntries bounds the per-session presentation memo. It only needs
// to cover a short revert/redo window; the heavy lifting is in the
// shared execution cache. It is also the per-session bound on pinned
// cache relations (each memo entry holds one etable.Pin).
const memoEntries = 8

// windowMemoEntries bounds the materialized row windows kept per
// presentation (a paging client re-reads its current and adjacent
// windows; anything older is cheap to rebuild from the presentation).
const windowMemoEntries = 8

// windowMemoRowCap bounds the rows of any memoized partial window, so
// a client requesting 8 near-full windows cannot hold 8 full renders'
// worth of cells per presentation. Only the canonical full render
// (offset 0, no limit) is exempt — it is one entry, matching the
// pre-windowing memo's footprint; oversized partial windows (including
// unlimited reads at a nonzero offset) are simply rebuilt per read,
// which is still O(window).
const windowMemoRowCap = 4096

// presEntry is one memoized presentation state: the prepared base
// presentation (canonical ID-ascending row order, never sorted in
// place), the pin holding its matched relation in the shared cache,
// the bounded memo of sorted views over that base, and the bounded
// window memo. Sort variants are etable.SortedView shallow copies —
// they share the base's columns, groupings, and neighbor layout and
// own only their row order — so switching sorts re-prepares nothing
// and pins nothing new. windows values have hidden columns already
// applied — they are exactly what readers get — so the window key
// carries the hidden set and sort alongside the row range.
type presEntry struct {
	base      *etable.Presentation
	pin       *etable.Pin
	sorted    map[string]*etable.Presentation
	sortOrder []string
	windows   map[winKey]*etable.Result
	winOrder  []winKey
}

// sortMemoEntries bounds the sorted views kept per presentation. A
// view is O(rows) row IDs (everything else is shared with the base),
// so the bound is about row-ID slices, not prepared state.
const sortMemoEntries = 8

// winKey identifies one materialized window of a presentation.
type winKey struct {
	offset, limit int
	hidden        string // hiddenKey of the entry's hidden-column set
	sort          string // sortKey of the entry's sort spec ("" = base order)
}

// release drops the entry's pin and any spill-backed state behind the
// presentation (idempotent; both are no-ops on heap-resident entries —
// spilled prepares carry a nil pin, pinned ones carry no spill files).
// Sorted views share the base's spill state, so closing the base
// releases every variant.
func (pe *presEntry) release() {
	pe.pin.Release()
	pe.base.Close()
}

// variant returns the presentation ordered per the entry's sort spec:
// the shared base when unsorted, otherwise a memoized SortedView over
// it (built on first use, bounded FIFO). All variants share one
// prepared presentation and one pin; only row order differs.
func (pe *presEntry) variant(e Entry) (*etable.Presentation, error) {
	if e.Sort == nil {
		return pe.base, nil
	}
	sk := sortKey(e.Sort)
	if v, ok := pe.sorted[sk]; ok {
		return v, nil
	}
	v, err := pe.base.SortedView(*e.Sort)
	if err != nil {
		return nil, err
	}
	if len(pe.sortOrder) >= sortMemoEntries {
		delete(pe.sorted, pe.sortOrder[0])
		pe.sortOrder = pe.sortOrder[1:]
	}
	pe.sorted[sk] = v
	pe.sortOrder = append(pe.sortOrder, sk)
	return v, nil
}

// recycleAll returns every memoized window's arenas to the pool (see
// Session.SetWindowRecycling) and empties the memo. Caller must hold
// the session lock and must be discarding the entry or its windows.
func (pe *presEntry) recycleAll() {
	for _, res := range pe.windows {
		res.Recycle()
	}
	clear(pe.windows)
	pe.winOrder = pe.winOrder[:0]
}

// Session is one user's interactive exploration state.
type Session struct {
	schema *tgm.SchemaGraph
	graph  *tgm.InstanceGraph
	// exec reuses intermediate match results (the paper's §9 future-work
	// item 2): Sort, Hide, Shift, and Revert re-executions hit its
	// cache. The cache behind it is shared across sessions when the
	// session is built with NewShared.
	exec *etable.Executor
	// pool and parallelism configure intra-query parallel execution:
	// pool is the (usually server-wide) worker pool, parallelism the
	// default per-request budget. A request context carrying
	// exec.WithBudget overrides the default per call. Both zero values
	// mean serial execution. Pool admission is try-acquire, so holding
	// mu while executing never blocks on another session's work.
	pool        *exec.Pool
	parallelism int
	// maxRows caps the rows any single request may materialize (0 =
	// unbounded): the execution core aborts oversized matches mid-join
	// (or mid-stream) with *graphrel.RowLimitError, and windowLocked
	// rejects oversized window requests before transforming a cell.
	maxRows int
	// planner forces the join-ordering policy for this session's
	// queries (etable.PlannerAuto, the zero value, is the adaptive
	// default; see SetPlanner).
	planner etable.PlannerMode
	// spill enables spill-to-disk execution (see SetSpill): when set,
	// maxRows becomes the spill trigger for the browsable prepare path
	// instead of a hard failure, and oversized results page from
	// temp-file runs. nil keeps the strict pre-spill cap.
	spill *graphrel.SpillPolicy
	// recycleWindows opts materialized windows into arena recycling
	// (see SetWindowRecycling): evicted window-memo entries return
	// their cell/row/ref arenas to the package pool instead of
	// garbage-collecting them, so steady-state paging allocates
	// (almost) nothing.
	recycleWindows bool

	// mu serializes all state-changing actions and snapshot reads on
	// this session. Lock ordering: session.mu may be held while the
	// executor takes cache shard locks, never the reverse.
	mu      sync.Mutex
	history []Entry
	cursor  int // index into history of the current state; -1 = empty

	// memo caches prepared presentations keyed by pattern alone
	// (sorting is a memoized view per entry, hiding is per window),
	// bounded FIFO; evicted entries release their cache pin.
	memo      map[string]*presEntry
	memoOrder []string
	// closed marks a session evicted by its server: its pins are
	// released and later presentations no longer pin (see Close).
	closed bool
}

// New starts an empty session over a TGDB with a private execution
// cache.
func New(schema *tgm.SchemaGraph, graph *tgm.InstanceGraph) *Session {
	return NewShared(schema, graph, etable.NewCache(etable.DefaultCacheEntries))
}

// NewShared starts an empty session whose executor is backed by a
// shared execution cache. All sessions sharing a cache must be over the
// same instance graph. Execution is serial; use NewWithExec to grant
// the session a worker pool.
func NewShared(schema *tgm.SchemaGraph, graph *tgm.InstanceGraph, cache *etable.Cache) *Session {
	return NewWithExec(schema, graph, cache, nil, 0)
}

// NewWithExec is NewShared plus intra-query parallel execution: queries
// fan out to at most parallelism workers drawn from pool (both may be
// zero/nil for serial execution). The pool is typically owned by the
// server and shared by every session, so the pool capacity — not the
// session count — bounds total helper goroutines.
func NewWithExec(schema *tgm.SchemaGraph, graph *tgm.InstanceGraph, cache *etable.Cache, pool *exec.Pool, parallelism int) *Session {
	return &Session{
		schema:      schema,
		graph:       graph,
		exec:        etable.NewSharedExecutor(graph, cache),
		pool:        pool,
		parallelism: parallelism,
		cursor:      -1,
		memo:        make(map[string]*presEntry),
	}
}

// SetMaxRows caps the rows any single request on this session may
// materialize (0 = unbounded, the default). Oversized matches fail
// mid-execution with a *graphrel.RowLimitError — before the full
// relation exists on the streaming path, after the offending join step
// on the eager one — and oversized explicit window requests are
// rejected before any cell is transformed. The cap guards the server
// against a single pathological query (a high-fanout join chain, or an
// unbounded read of a huge table) holding result-sized memory; paging
// within the cap is unaffected. Call before serving requests.
func (s *Session) SetMaxRows(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxRows = n
}

// SetSpill enables spill-to-disk execution for this session's queries:
// with a policy set, a browsable prepare whose match crosses the
// max-rows threshold overflows its materialization and breaker folds
// to temp-file runs and stays pageable, instead of failing with the
// 413 row-cap error. The policy's MaxBytes remains a hard cap (its
// exhaustion fails with the same *graphrel.RowLimitError), and
// explicit window requests larger than max-rows are still rejected —
// spilling bounds memory, it does not unbound a single read. nil (the
// default) keeps the strict cap. Call before serving requests.
func (s *Session) SetSpill(pol *graphrel.SpillPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spill = pol
}

// SetPlanner forces the join-ordering policy for this session's
// queries: etable.PlannerGreedy or etable.PlannerCost override the
// adaptive default (etable.PlannerAuto, which picks by corpus size).
// An ablation knob — production sessions leave it at auto.
func (s *Session) SetPlanner(m etable.PlannerMode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.planner = m
}

// SetWindowRecycling opts the session into window-arena recycling:
// materialized row windows evicted from the session's window memo (and
// windows dropped by Close or presentation-memo eviction) return their
// backing arenas to a pool for the next window to reuse, so a client
// paging steadily allocates near-zero bytes per page.
//
// The contract is strict: with recycling on, every *etable.Result the
// session returns (WindowCtx, StateWindowCtx, ResultCtx, …) is valid
// only until the caller's next call on this session — a later call may
// recycle it and reuse its cells. Callers that serialize each result
// before issuing the next call (the HTTP server renders each response
// to JSON under its per-session request lock) satisfy this; callers
// that retain Results across calls must leave recycling off (the
// default, which preserves the prior fully-GC'd behavior).
func (s *Session) SetWindowRecycling(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recycleWindows = on
}

// execOptions resolves the execution options for one request: the
// request context (cancellation), the session's worker pool, and the
// per-request budget (context override via exec.WithBudget, else the
// session default).
func (s *Session) execOptions(ctx context.Context) etable.ExecOptions {
	return etable.ExecOptions{
		Ctx:         ctx,
		Pool:        s.pool,
		Parallelism: exec.BudgetFrom(ctx, s.parallelism),
		MaxRows:     s.maxRows,
		Spill:       s.spill,
		Planner:     s.planner,
	}
}

// Schema returns the schema graph (the "default table list" of Figure 9
// is its entity node types).
func (s *Session) Schema() *tgm.SchemaGraph { return s.schema }

// Graph returns the instance graph.
func (s *Session) Graph() *tgm.InstanceGraph { return s.graph }

// History returns a copy of all history entries, oldest first. (A copy,
// because a concurrent action may append in place.)
func (s *Session) History() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Entry(nil), s.history...)
}

// Cursor returns the index of the current history entry (-1 when empty).
func (s *Session) Cursor() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cursor
}

// Pattern returns the current query pattern, or nil before any Open.
func (s *Session) Pattern() *etable.Pattern {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cursor < 0 {
		return nil
	}
	return s.history[s.cursor].Pattern
}

// State is a consistent snapshot of a session: the pattern, the
// presented result (nil before any Open), and the history. The server
// encodes one State per request instead of reading pattern, result, and
// history through separate locks that could interleave with a
// concurrent action. Windowed snapshots (StateWindowCtx) carry only the
// requested rows in Result; Result.TotalRows/Offset locate the window.
type State struct {
	Pattern *etable.Pattern
	Result  *etable.Result
	History []Entry
	Cursor  int
}

// State snapshots the session under one lock acquisition.
func (s *Session) State() (State, error) { return s.StateCtx(context.Background()) }

// StateCtx is State under a request context: rendering the snapshot may
// execute the current pattern, which honors ctx's cancellation and any
// exec.WithBudget parallelism override it carries. The result is the
// full render; servers paging large tables use StateWindowCtx instead.
func (s *Session) StateCtx(ctx context.Context) (State, error) {
	return s.StateWindowCtx(ctx, 0, -1)
}

// StateWindowCtx is StateCtx materializing only the [offset,
// offset+limit) row window of the presented result (limit < 0 = all
// rows from offset, limit 0 = metadata only). The window is served
// from the session's windowed presentation memo: the matched relation
// stays pinned in the shared cache and only the requested rows are
// transformed, so the cost of a page does not scale with the table.
func (s *Session) StateWindowCtx(ctx context.Context, offset, limit int) (State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := State{Cursor: s.cursor, History: append([]Entry(nil), s.history...)}
	if s.cursor < 0 {
		return st, nil
	}
	st.Pattern = s.history[s.cursor].Pattern
	res, err := s.windowLocked(ctx, offset, limit)
	if err != nil {
		return State{}, err
	}
	st.Result = res
	return st, nil
}

// WindowCtx returns the [offset, offset+limit) row window of the
// current presented result (limit < 0 = all rows from offset). See
// StateWindowCtx for the cost model.
func (s *Session) WindowCtx(ctx context.Context, offset, limit int) (*etable.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.windowLocked(ctx, offset, limit)
}

func (s *Session) push(op ops.Op, action string, p *etable.Pattern, sort *etable.SortSpec, hidden map[string]bool) {
	// A new action truncates any reverted-away suffix, like an editor's
	// redo stack.
	s.history = append(s.history[:s.cursor+1], Entry{
		Op: op, Action: action, Pattern: p, Sort: sort, Hidden: hidden,
	})
	s.cursor = len(s.history) - 1
}

func (s *Session) current() (Entry, error) {
	if s.cursor < 0 {
		return Entry{}, fmt.Errorf("session: no table is open")
	}
	return s.history[s.cursor], nil
}

// Apply validates, compiles, and executes one declarative operation.
// Validation failures return an *ops.Error with code invalid_op before
// any session state is touched; state-dependent failures (no open table,
// unknown column, …) return code op_failed and leave the session
// unchanged.
func (s *Session) Apply(op ops.Op) error { return s.ApplyCtx(context.Background(), op) }

// ApplyCtx is Apply under a request context: ops that execute the
// pattern (pivot, seeall, sort, …) honor ctx's cancellation and any
// exec.WithBudget parallelism override it carries. A canceled ctx
// leaves the session unchanged.
func (s *Session) ApplyCtx(ctx context.Context, op ops.Op) error {
	c, err := op.Compile(s.schema)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Enforce the "canceled ctx leaves the session unchanged" contract
	// for every op, not only those that execute the pattern: a request
	// whose client vanished while queued on the session lock must not
	// mutate history it will never report back.
	if err := ctxErr(ctx); err != nil {
		return ops.Failed(err, -1)
	}
	if err := s.applyLocked(ctx, c); err != nil {
		return ops.Failed(err, -1)
	}
	return nil
}

// ctxErr reports a canceled or expired context (nil ctx = no error).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ApplyPipeline executes a batch of operations atomically: the whole
// pipeline is compiled up front, and if any op fails to apply, the
// session is restored to its pre-batch state and the returned *ops.Error
// carries the index of the offending op.
func (s *Session) ApplyPipeline(p ops.Pipeline) error {
	return s.ApplyPipelineCtx(context.Background(), p)
}

// ApplyPipelineCtx is ApplyPipeline under a request context; a
// cancellation mid-batch rolls the session back like any other failure.
func (s *Session) ApplyPipelineCtx(ctx context.Context, p ops.Pipeline) error {
	compiled, err := p.Compile(s.schema)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// push appends into history[:cursor+1], which can overwrite entries
	// of the shared backing array past the cursor — the rollback
	// snapshot must be a full copy.
	savedHistory := append([]Entry(nil), s.history...)
	savedCursor := s.cursor
	for i, c := range compiled {
		if err := ctxErr(ctx); err != nil {
			s.history, s.cursor = savedHistory, savedCursor
			return ops.Failed(err, i)
		}
		if err := s.applyLocked(ctx, c); err != nil {
			s.history, s.cursor = savedHistory, savedCursor
			return ops.Failed(err, i)
		}
	}
	return nil
}

// applyLocked executes one compiled op with s.mu held. It is the single
// implementation of every session mutation; the imperative methods and
// the replay path all funnel through it.
func (s *Session) applyLocked(ctx context.Context, c ops.Compiled) error {
	op := c.Op
	switch op.Op {
	case ops.KindOpen:
		p, err := etable.Initiate(s.schema, op.Table)
		if err != nil {
			return err
		}
		s.push(op, fmt.Sprintf("Open '%s' table", op.Table), p, nil, nil)

	case ops.KindFilter:
		cur, err := s.current()
		if err != nil {
			return err
		}
		p, err := etable.SelectExpr(cur.Pattern, c.Cond, op.Cond)
		if err != nil {
			return err
		}
		s.push(op, fmt.Sprintf("Filter '%s' table by (%s)", p.Primary, op.Cond),
			p, cur.Sort, cur.Hidden)

	case ops.KindFilterByNeighbor:
		// "filter rows by the labels of the neighbor nodes columns
		// (e.g., authors' names), which is translated into subqueries"
		// (§6.1): the neighbor type joins into the pattern with the
		// condition attached; the primary node is unchanged.
		cur, err := s.current()
		if err != nil {
			return err
		}
		cols, err := s.visibleColumnsLocked(ctx)
		if err != nil {
			return err
		}
		ci := findColumn(cols, op.Column)
		if ci < 0 {
			return fmt.Errorf("session: no column %q", op.Column)
		}
		col := cols[ci]
		if col.Kind != etable.ColNeighbor {
			return fmt.Errorf("session: column %q is not a neighbor column", op.Column)
		}
		p, newKey, err := etable.AddBetween(s.schema, cur.Pattern, cur.Pattern.Primary, col.EdgeType)
		if err != nil {
			return err
		}
		if p, err = etable.SelectNodeExpr(p, newKey, c.Cond, op.Cond); err != nil {
			return err
		}
		s.push(op, fmt.Sprintf("Filter '%s' table by (%s: %s)", p.Primary, op.Column, op.Cond),
			p, cur.Sort, cur.Hidden)

	case ops.KindPivot:
		// Add for neighbor columns, Shift for participating columns.
		cur, err := s.current()
		if err != nil {
			return err
		}
		cols, err := s.visibleColumnsLocked(ctx)
		if err != nil {
			return err
		}
		ci := findColumn(cols, op.Column)
		if ci < 0 {
			return fmt.Errorf("session: no column %q", op.Column)
		}
		col := cols[ci]
		var p *etable.Pattern
		switch col.Kind {
		case etable.ColNeighbor:
			p, err = etable.Add(s.schema, cur.Pattern, col.EdgeType)
		case etable.ColParticipating:
			p, err = etable.Shift(cur.Pattern, col.NodeKey)
		default:
			return fmt.Errorf("session: cannot pivot on base attribute %q", op.Column)
		}
		if err != nil {
			return err
		}
		s.push(op, fmt.Sprintf("Pivot to '%s'", op.Column), p, nil, nil)

	case ops.KindSingle:
		// Initiate the clicked node's type, then Select it by key.
		n := s.graph.Node(tgm.NodeID(*op.Node))
		if n == nil {
			return fmt.Errorf("session: no node %d", *op.Node)
		}
		p, err := etable.Initiate(s.schema, n.Type.Name)
		if err != nil {
			return err
		}
		cond, condSrc := keyCondition(n)
		if p, err = etable.SelectExpr(p, cond, condSrc); err != nil {
			return err
		}
		s.push(op, fmt.Sprintf("See '%s' (%s)", n.Label(), n.Type.Name), p, nil, nil)

	case ops.KindSeeall:
		// Select the clicked row's node, then Add (neighbor column) or
		// Shift (participating column).
		cur, err := s.current()
		if err != nil {
			return err
		}
		n := s.graph.Node(tgm.NodeID(*op.Node))
		if n == nil {
			return fmt.Errorf("session: no node %d", *op.Node)
		}
		if n.Type.Name != cur.Pattern.PrimaryNode().Type {
			return fmt.Errorf("session: node %q is not of the primary type %q",
				n.Label(), cur.Pattern.PrimaryNode().Type)
		}
		cols, err := s.visibleColumnsLocked(ctx)
		if err != nil {
			return err
		}
		ci := findColumn(cols, op.Column)
		if ci < 0 {
			return fmt.Errorf("session: no column %q", op.Column)
		}
		col := cols[ci]
		cond, condSrc := keyCondition(n)
		p, err := etable.SelectExpr(cur.Pattern, cond, condSrc)
		if err != nil {
			return err
		}
		switch col.Kind {
		case etable.ColNeighbor:
			p, err = etable.Add(s.schema, p, col.EdgeType)
		case etable.ColParticipating:
			p, err = etable.Shift(p, col.NodeKey)
		default:
			return fmt.Errorf("session: cannot see-all on base attribute %q", op.Column)
		}
		if err != nil {
			return err
		}
		s.push(op, fmt.Sprintf("See all '%s' of '%s'", op.Column, n.Label()), p, nil, nil)

	case ops.KindSort:
		// The spec is validated without materializing rows: against the
		// visible columns (a hidden column is not a sort target) AND
		// against the presentation that will execute the sort, so an
		// accepted op can never fail resolution on a later page read.
		cur, err := s.current()
		if err != nil {
			return err
		}
		pe, err := s.presentationLocked(ctx, cur)
		if err != nil {
			return err
		}
		spec := etable.SortSpec{Attr: op.Attr, Column: op.Column, Desc: op.Desc}
		// One resolver: the presentation that will execute the sort.
		// Visibility is a separate, trivial rule — hidden columns are
		// not sort targets (base column names equal their attr names).
		if err := pe.base.ValidateSort(spec); err != nil {
			return err
		}
		if name := cmp.Or(spec.Attr, spec.Column); cur.Hidden[name] {
			return fmt.Errorf("session: cannot sort by hidden column %q", name)
		}
		what := spec.Attr
		if what == "" {
			what = "# of " + spec.Column
		}
		dir := "asc"
		if spec.Desc {
			dir = "desc"
		}
		s.push(op, fmt.Sprintf("Sort table by %s (%s)", what, dir), cur.Pattern, &spec, cur.Hidden)

	case ops.KindHide:
		cur, err := s.current()
		if err != nil {
			return err
		}
		cols, err := s.visibleColumnsLocked(ctx)
		if err != nil {
			return err
		}
		if findColumn(cols, op.Column) < 0 {
			return fmt.Errorf("session: no column %q", op.Column)
		}
		hidden := map[string]bool{op.Column: true}
		for k := range cur.Hidden {
			hidden[k] = true
		}
		s.push(op, fmt.Sprintf("Hide column '%s'", op.Column), cur.Pattern, cur.Sort, hidden)

	case ops.KindShow:
		cur, err := s.current()
		if err != nil {
			return err
		}
		if !cur.Hidden[op.Column] {
			return fmt.Errorf("session: column %q is not hidden", op.Column)
		}
		hidden := map[string]bool{}
		for k := range cur.Hidden {
			if k != op.Column {
				hidden[k] = true
			}
		}
		s.push(op, fmt.Sprintf("Show column '%s'", op.Column), cur.Pattern, cur.Sort, hidden)

	case ops.KindRevert:
		if op.Index < 0 || op.Index >= len(s.history) {
			return fmt.Errorf("session: no history entry %d", op.Index)
		}
		s.cursor = op.Index

	default:
		return fmt.Errorf("session: unknown op kind %q", op.Op)
	}
	return nil
}

// keyCondition builds the "this exact node" condition used by Single and
// Seeall: key attribute = node's key value.
func keyCondition(n *tgm.Node) (expr.Expr, string) {
	nt := n.Type
	keyVal := n.Attr(nt.Key)
	cond := expr.Cmp{Op: expr.OpEq, Left: expr.Col{Name: nt.Key}, Right: expr.Const{Val: keyVal}}
	return cond, fmt.Sprintf("%s = %s", nt.Key, keyVal.SQL())
}

// The imperative methods below are thin wrappers over Apply — the op
// algebra is the single source of truth for every session mutation.

// Open starts a new ETable from a node type (user action 1; Fig 7 U1).
func (s *Session) Open(typeName string) error { return s.Apply(ops.Open(typeName)) }

// Filter applies a selection condition to the current primary node type
// (user action 2; Fig 7 U3).
func (s *Session) Filter(condSrc string) error { return s.Apply(ops.Filter(condSrc)) }

// FilterByNeighbor filters rows by a condition on one of the primary
// type's neighbor node columns (§6.1).
func (s *Session) FilterByNeighbor(columnName, condSrc string) error {
	return s.Apply(ops.FilterByNeighbor(columnName, condSrc))
}

// Pivot changes the primary node type through a column (user action 3;
// Fig 7 U4).
func (s *Session) Pivot(columnName string) error { return s.Apply(ops.Pivot(columnName)) }

// Single opens a one-row ETable for a clicked entity reference (user
// action 4).
func (s *Session) Single(id tgm.NodeID) error { return s.Apply(ops.Single(int64(id))) }

// Seeall lists the complete set of entity references of one cell (user
// action 5).
func (s *Session) Seeall(id tgm.NodeID, columnName string) error {
	return s.Apply(ops.Seeall(int64(id), columnName))
}

// SortBy orders the current table by a base attribute or by the
// reference count of an entity-reference column (§6.1 additional
// action).
func (s *Session) SortBy(spec etable.SortSpec) error {
	return s.Apply(ops.Op{Op: ops.KindSort, Attr: spec.Attr, Column: spec.Column, Desc: spec.Desc})
}

// HideColumn removes a column from the presentation (§6.1).
func (s *Session) HideColumn(name string) error { return s.Apply(ops.Hide(name)) }

// ShowColumn re-adds a hidden column.
func (s *Session) ShowColumn(name string) error { return s.Apply(ops.Show(name)) }

// Revert moves the current state to history entry i (the history view's
// "revert to a previous state").
func (s *Session) Revert(i int) error { return s.Apply(ops.Revert(i)) }

// Log is a session serialized as its replayable operation log: the op of
// every history entry in order, plus the cursor position. Replaying a
// log on a fresh session over the same graph reproduces identical state,
// which is what makes sessions persistable across server eviction.
type Log struct {
	Ops    []ops.Op `json:"ops"`
	Cursor int      `json:"cursor"`
}

// Export snapshots the session as a replayable operation log.
func (s *Session) Export() Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	log := Log{Cursor: s.cursor, Ops: make([]ops.Op, len(s.history))}
	for i := range s.history {
		log.Ops[i] = s.history[i].Op
	}
	return log
}

// Entries returns a copy of the history and the cursor under one lock
// acquisition (unlike History+Cursor, which could interleave with a
// concurrent action).
func (s *Session) Entries() ([]Entry, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Entry(nil), s.history...), s.cursor
}

// Replay resets the session and re-executes an exported operation log.
// The whole log is compiled up front; if any op fails to apply, the
// session's previous state is restored and the returned *ops.Error
// carries the offending op's index. On success the history, cursor, and
// presented state are identical to the session the log was exported
// from.
func (s *Session) Replay(log Log) error { return s.ReplayCtx(context.Background(), log) }

// ReplayCtx is Replay under a request context; cancellation mid-replay
// restores the previous state.
func (s *Session) ReplayCtx(ctx context.Context, log Log) error {
	compiled, err := ops.Pipeline(log.Ops).Compile(s.schema)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	savedHistory, savedCursor := s.history, s.cursor
	restore := func() { s.history, s.cursor = savedHistory, savedCursor }
	// Starting from nil history, pushes allocate a fresh backing array,
	// so the saved slice cannot be clobbered.
	s.history, s.cursor = nil, -1
	for i, c := range compiled {
		if err := ctxErr(ctx); err != nil {
			restore()
			return ops.Failed(err, i)
		}
		if err := s.applyLocked(ctx, c); err != nil {
			restore()
			return ops.Failed(err, i)
		}
	}
	if len(s.history) == 0 {
		if log.Cursor != -1 {
			restore()
			return ops.Failed(fmt.Errorf("session: replay cursor %d with empty history", log.Cursor), -1)
		}
		return nil
	}
	if log.Cursor < 0 || log.Cursor >= len(s.history) {
		restore()
		return ops.Failed(fmt.Errorf("session: replay cursor %d outside history of %d", log.Cursor, len(s.history)), -1)
	}
	s.cursor = log.Cursor
	return nil
}

// presentationKey identifies a prepared presentation: the pattern
// alone (String covers nodes, conditions, primary, and edges).
// Neither sort nor hiding is part of the key — a Presentation's
// prepared state (distinct rows, groupings, column layout) is
// independent of both. Sort variants are memoized per entry as
// SortedView row orders over the one shared base (presEntry.variant),
// and hideColumns applies per materialized window; both differentiate
// windows via winKey. The result: one Prepare, one pin, and one set of
// groupings per pattern across every sort/hide combination a session
// toggles through.
func presentationKey(e Entry) string {
	return e.Pattern.String()
}

// sortKey canonicalizes a sort spec for the sorted-view and window
// memo keys.
func sortKey(sp *etable.SortSpec) string {
	if sp == nil {
		return ""
	}
	return fmt.Sprintf("%s\x01%s\x01%v", sp.Attr, sp.Column, sp.Desc)
}

// hiddenKey canonicalizes a hidden-column set for the window memo key.
func hiddenKey(hidden map[string]bool) string {
	if len(hidden) == 0 {
		return ""
	}
	names := make([]string, 0, len(hidden))
	for k := range hidden {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, "\x01")
}

// Result executes the current pattern and applies the presentation state
// (sort, hidden columns), returning the full render. Identical
// presentation states are served from the session's memo without
// re-sorting or re-transforming; paged readers should prefer WindowCtx.
func (s *Session) Result() (*etable.Result, error) {
	return s.ResultCtx(context.Background())
}

// ResultCtx is Result under a request context (cancellation and
// parallelism budget; see StateCtx).
func (s *Session) ResultCtx(ctx context.Context) (*etable.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resultLocked(ctx)
}

// resultLocked is the full render with s.mu held: the all-rows window.
func (s *Session) resultLocked(ctx context.Context) (*etable.Result, error) {
	return s.windowLocked(ctx, 0, -1)
}

// presentationLocked returns the memoized presentation for the current
// entry, preparing (and pinning) it on first use. Caller holds s.mu.
func (s *Session) presentationLocked(ctx context.Context, cur Entry) (*presEntry, error) {
	key := presentationKey(cur)
	if pe, ok := s.memo[key]; ok {
		return pe, nil
	}
	pres, pin, err := s.exec.PrepareWithOpts(cur.Pattern, s.execOptions(ctx))
	if err != nil {
		return nil, err
	}
	pe := &presEntry{base: pres, pin: pin,
		sorted:  make(map[string]*etable.Presentation),
		windows: make(map[winKey]*etable.Result)}
	if s.closed {
		// A request racing the server's eviction of this session must
		// not leave a pin nobody will release; the presentation itself
		// stays usable (relations are immutable regardless of pinning).
		// A spilled presentation's run files are NOT closed here — this
		// racing request is about to read them; they are anonymous
		// (unlinked) files, so the descriptors' finalizers reclaim the
		// storage when the presentation is collected.
		pin.Release()
	}
	if len(s.memoOrder) >= memoEntries {
		evict := s.memoOrder[0]
		s.memo[evict].release()
		if s.recycleWindows {
			s.memo[evict].recycleAll()
		}
		delete(s.memo, evict)
		s.memoOrder = s.memoOrder[1:]
	}
	s.memo[key] = pe
	s.memoOrder = append(s.memoOrder, key)
	return pe, nil
}

// windowLocked materializes (or re-reads) one row window of the current
// presentation, with hidden columns applied. Caller holds s.mu.
func (s *Session) windowLocked(ctx context.Context, offset, limit int) (*etable.Result, error) {
	cur, err := s.current()
	if err != nil {
		return nil, err
	}
	pe, err := s.presentationLocked(ctx, cur)
	if err != nil {
		return nil, err
	}
	pres, err := pe.variant(cur)
	if err != nil {
		return nil, err
	}
	// The max-rows guard, window side: the match itself passed (or was
	// computed under) the cap, but an unbounded read of a huge table
	// would still materialize result-sized cells — reject it before
	// transforming anything. Computed from the prepared presentation's
	// row count, so the check is O(1).
	if s.maxRows > 0 {
		eff := pres.NumRows() - offset
		if eff < 0 {
			eff = 0
		}
		if limit >= 0 && limit < eff {
			eff = limit
		}
		if eff > s.maxRows {
			return nil, graphrel.LimitExceeded(s.maxRows, eff)
		}
	}
	wkey := winKey{offset: offset, limit: limit,
		hidden: hiddenKey(cur.Hidden), sort: sortKey(cur.Sort)}
	if res, ok := pe.windows[wkey]; ok {
		return res, nil
	}
	res, err := pres.WindowOpts(offset, limit, s.execOptions(ctx))
	if err != nil {
		return nil, err
	}
	if len(cur.Hidden) > 0 {
		res = hideColumns(res, cur.Hidden)
	}
	if !(offset == 0 && limit < 0) && len(res.Rows) > windowMemoRowCap {
		return res, nil // oversized partial window: serve, don't retain
	}
	if len(pe.winOrder) >= windowMemoEntries {
		if s.recycleWindows {
			// The evicted window's arenas feed the next materialization.
			// Sole ownership holds under the recycling contract: any
			// Result handed out by an earlier call is dead by now.
			pe.windows[pe.winOrder[0]].Recycle()
		}
		delete(pe.windows, pe.winOrder[0])
		pe.winOrder = pe.winOrder[1:]
	}
	pe.windows[wkey] = res
	pe.winOrder = append(pe.winOrder, wkey)
	return res, nil
}

// visibleColumnsLocked returns the current entry's presented column
// layout (hidden columns removed) without materializing any rows —
// what ops that only need to resolve a column (pivot, seeall, sort,
// hide) read instead of rendering the table. Caller holds s.mu.
func (s *Session) visibleColumnsLocked(ctx context.Context) ([]etable.Column, error) {
	cur, err := s.current()
	if err != nil {
		return nil, err
	}
	pe, err := s.presentationLocked(ctx, cur)
	if err != nil {
		return nil, err
	}
	return visibleColumns(pe.base.Columns(), cur.Hidden), nil
}

// visibleColumns filters hidden columns out of a column layout.
func visibleColumns(cols []etable.Column, hidden map[string]bool) []etable.Column {
	if len(hidden) == 0 {
		return cols
	}
	out := make([]etable.Column, 0, len(cols))
	for _, c := range cols {
		if !hidden[c.Name] {
			out = append(out, c)
		}
	}
	return out
}

// findColumn returns the ordinal of the named column, or -1.
func findColumn(cols []etable.Column, name string) int {
	for i := range cols {
		if cols[i].Name == name {
			return i
		}
	}
	return -1
}

func hideColumns(res *etable.Result, hidden map[string]bool) *etable.Result {
	out := *res
	out.Columns = nil
	keep := make([]int, 0, len(res.Columns))
	for i, c := range res.Columns {
		if !hidden[c.Name] {
			out.Columns = append(out.Columns, c)
			keep = append(keep, i)
		}
	}
	out.Rows = make([]etable.Row, len(res.Rows))
	for ri, row := range res.Rows {
		nr := row
		nr.Cells = make([]etable.Cell, len(keep))
		for i, ci := range keep {
			nr.Cells[i] = row.Cells[ci]
		}
		out.Rows[ri] = nr
	}
	return &out
}

// Close releases the session's pinned cache relations and marks the
// session closed: later reads still work (and re-prepare presentations
// as needed) but no longer pin, so pins cannot outlive the session.
// Servers must Close a session when evicting it; Close is idempotent.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for _, pe := range s.memo {
		pe.release()
		if s.recycleWindows {
			pe.recycleAll()
		}
	}
}

// EntityTypes lists the node types shown in the default table list:
// entity types first, then attribute node types.
func (s *Session) EntityTypes() []*tgm.NodeType {
	var ents, attrs []*tgm.NodeType
	for _, nt := range s.schema.NodeTypes() {
		if nt.Kind == tgm.NodeEntity {
			ents = append(ents, nt)
		} else {
			attrs = append(attrs, nt)
		}
	}
	return append(ents, attrs...)
}

// LookupValue finds a base attribute value in the current result by row
// label, a convenience for task scripting and tests.
func (s *Session) LookupValue(rowLabel, attr string) (value.V, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.resultLocked(context.Background())
	if err != nil {
		return value.Null, err
	}
	ci := -1
	for i := range res.Columns {
		if res.Columns[i].Kind == etable.ColBase && res.Columns[i].Attr == attr {
			ci = i
			break
		}
	}
	if ci < 0 {
		return value.Null, fmt.Errorf("session: no base attribute %q", attr)
	}
	for _, row := range res.Rows {
		if row.Label == rowLabel {
			return row.Cells[ci].Value, nil
		}
	}
	return value.Null, fmt.Errorf("session: no row labeled %q", rowLabel)
}
