package pager

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestFileSliceAndWriteVisibility: Slice returns the file's bytes, and
// — on mmap platforms — an in-place rewrite of the file is visible
// through a fresh Slice (the mapping is MAP_SHARED), which is what
// lets a repaired snapshot recover without reopening.
func TestFileSliceAndWriteVisibility(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	content := []byte("0123456789abcdef")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	pf, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if pf.Size() != int64(len(content)) {
		t.Fatalf("Size = %d, want %d", pf.Size(), len(content))
	}
	if runtime.GOOS == "linux" || runtime.GOOS == "darwin" {
		if !pf.Mapped() {
			t.Fatal("expected an mmap view on this platform")
		}
	}
	got, err := pf.Slice(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content[4:10]) {
		t.Fatalf("Slice(4,6) = %q, want %q", got, content[4:10])
	}
	// Out-of-range requests fail instead of truncating.
	for _, bad := range [][2]int64{{-1, 4}, {0, -1}, {10, 7}, {17, 0}} {
		if _, err := pf.Slice(bad[0], bad[1]); err == nil {
			t.Fatalf("Slice(%d, %d) succeeded outside the file", bad[0], bad[1])
		}
	}
	// Rewrite a byte through the filesystem; a fresh Slice sees it.
	w, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAt([]byte{'X'}, 5); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err = pf.Slice(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 'X' {
		t.Fatalf("Slice after WriteAt = %q, want 'X'", got)
	}
}

// TestFileEmpty: a zero-byte file opens, reports size 0, and rejects
// any non-empty slice.
func TestFileEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	pf, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if pf.Size() != 0 {
		t.Fatalf("Size = %d", pf.Size())
	}
	if b, err := pf.Slice(0, 0); err != nil || len(b) != 0 {
		t.Fatalf("Slice(0,0) = %v, %v", b, err)
	}
	if _, err := pf.Slice(0, 1); err == nil {
		t.Fatal("Slice(0,1) succeeded on an empty file")
	}
}
