package pager

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingLoader returns a load func for key that bumps a per-key
// counter, so tests can distinguish cache hits from re-faults.
func countingLoader(loads *sync.Map, key Key) func() (any, error) {
	return func() (any, error) {
		c, _ := loads.LoadOrStore(key, new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
		return fmt.Sprintf("%s/%d", key.Type, key.Attr), nil
	}
}

func loadCount(loads *sync.Map, key Key) int64 {
	c, ok := loads.Load(key)
	if !ok {
		return 0
	}
	return c.(*atomic.Int64).Load()
}

// TestGetCachesWithinBudget: repeated Gets within the budget never
// re-fault.
func TestGetCachesWithinBudget(t *testing.T) {
	p := New(4)
	var loads sync.Map
	keys := []Key{{"A", 0}, {"A", 1}, {"B", 0}}
	for round := 0; round < 3; round++ {
		for _, k := range keys {
			v, err := p.Get(k, countingLoader(&loads, k))
			if err != nil {
				t.Fatal(err)
			}
			if want := fmt.Sprintf("%s/%d", k.Type, k.Attr); v != want {
				t.Fatalf("Get(%v) = %v, want %v", k, v, want)
			}
		}
	}
	for _, k := range keys {
		if n := loadCount(&loads, k); n != 1 {
			t.Errorf("key %v loaded %d times, want 1", k, n)
		}
	}
	st := p.Stats()
	if st.Resident != 3 || st.Faults != 3 || st.Evictions != 0 {
		t.Fatalf("Stats = %+v, want 3 resident, 3 faults, 0 evictions", st)
	}
}

// TestLRUEviction: with budget 2, touching a third section evicts the
// least recently used one — and recency is by access, not insertion.
func TestLRUEviction(t *testing.T) {
	p := New(2)
	var loads sync.Map
	a, b, c := Key{"T", 0}, Key{"T", 1}, Key{"T", 2}
	get := func(k Key) {
		t.Helper()
		if _, err := p.Get(k, countingLoader(&loads, k)); err != nil {
			t.Fatal(err)
		}
	}
	get(a)
	get(b)
	get(a) // a is now more recent than b
	get(c) // must evict b, not a
	if st := p.Stats(); st.Resident != 2 || st.Evictions != 1 {
		t.Fatalf("Stats = %+v, want 2 resident, 1 eviction", st)
	}
	get(a)
	if n := loadCount(&loads, a); n != 1 {
		t.Fatalf("a re-faulted (%d loads); LRU should have evicted b", n)
	}
	get(b)
	if n := loadCount(&loads, b); n != 2 {
		t.Fatalf("b loaded %d times, want 2 (evicted once)", n)
	}
}

// TestPinBlocksEviction: a pinned section survives arbitrary churn in
// a pool whose whole budget the churn exceeds, then returns to the LRU
// order on release.
func TestPinBlocksEviction(t *testing.T) {
	p := New(2)
	var loads sync.Map
	pinned := Key{"P", 0}
	_, release, err := p.Pin(pinned, countingLoader(&loads, pinned))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		k := Key{"P", i}
		if _, err := p.Get(k, countingLoader(&loads, k)); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Pinned != 1 {
		t.Fatalf("Stats.Pinned = %d, want 1", st.Pinned)
	}
	// The pinned section plus the latest unpinned survivor.
	if st.Resident != 2 {
		t.Fatalf("Stats.Resident = %d, want 2", st.Resident)
	}
	if _, err := p.Get(pinned, countingLoader(&loads, pinned)); err != nil {
		t.Fatal(err)
	}
	if n := loadCount(&loads, pinned); n != 1 {
		t.Fatalf("pinned section re-faulted (%d loads)", n)
	}
	release()
	// Released: the formerly pinned section is ordinary again and LRU
	// churn can evict it.
	for i := 6; i <= 8; i++ {
		k := Key{"P", i}
		if _, err := p.Get(k, countingLoader(&loads, k)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Get(pinned, countingLoader(&loads, pinned)); err != nil {
		t.Fatal(err)
	}
	if n := loadCount(&loads, pinned); n != 2 {
		t.Fatalf("formerly pinned section loaded %d times, want 2 (evictable after release)", n)
	}
	if st := p.Stats(); st.Resident != 2 || st.Pinned != 0 {
		t.Fatalf("Stats after release = %+v, want 2 resident, 0 pinned", st)
	}
}

// TestAllPinnedOvershoot: when every resident section is pinned past
// the budget, eviction yields (overshoot) instead of dropping pinned
// entries, and the budget is re-enforced as pins release.
func TestAllPinnedOvershoot(t *testing.T) {
	p := New(2)
	var loads sync.Map
	var releases []func()
	for i := 0; i < 4; i++ {
		k := Key{"T", i}
		_, rel, err := p.Pin(k, countingLoader(&loads, k))
		if err != nil {
			t.Fatal(err)
		}
		releases = append(releases, rel)
	}
	if st := p.Stats(); st.Resident != 4 || st.Pinned != 4 || st.Evictions != 0 {
		t.Fatalf("Stats = %+v, want 4 resident all pinned, 0 evictions", st)
	}
	for _, rel := range releases {
		rel()
	}
	if st := p.Stats(); st.Resident != 2 || st.Pinned != 0 {
		t.Fatalf("Stats after releases = %+v, want 2 resident", st)
	}
}

// TestSingleflight: concurrent Gets for one key share a single load.
func TestSingleflight(t *testing.T) {
	p := New(4)
	var loads atomic.Int64
	gate := make(chan struct{})
	load := func() (any, error) {
		loads.Add(1)
		<-gate
		return "v", nil
	}
	const workers = 16
	var wg sync.WaitGroup
	errs := make([]error, workers)
	vals := make([]any, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = p.Get(Key{"S", 0}, load)
		}(i)
	}
	// Let the workers pile up on the in-flight call, then open the gate.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if vals[i] != "v" {
			t.Fatalf("worker %d got %v", i, vals[i])
		}
	}
	if n := loads.Load(); n != 1 {
		t.Fatalf("%d loads for one key, want 1 (singleflight)", n)
	}
	if st := p.Stats(); st.Faults != 1 {
		t.Fatalf("Stats.Faults = %d, want 1", st.Faults)
	}
}

// TestErrorNotSticky: a failed load is reported to its waiters but not
// cached — the next Get retries and can succeed.
func TestErrorNotSticky(t *testing.T) {
	p := New(2)
	boom := errors.New("disk on fire")
	calls := 0
	load := func() (any, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "recovered", nil
	}
	if _, err := p.Get(Key{"E", 0}, load); !errors.Is(err, boom) {
		t.Fatalf("first Get error = %v, want %v", err, boom)
	}
	if st := p.Stats(); st.Resident != 0 {
		t.Fatalf("failed load left %d resident sections", st.Resident)
	}
	v, err := p.Get(Key{"E", 0}, load)
	if err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if v != "recovered" {
		t.Fatalf("retry got %v", v)
	}
	// And other keys were never poisoned by the failure.
	if _, err := p.Get(Key{"E", 1}, func() (any, error) { return "ok", nil }); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentChurn hammers a tiny pool from many goroutines mixing
// Get and Pin across more keys than the budget, so faults race
// evictions and unpins. Run under -race in CI; correctness here is
// "right value, no deadlock, bounded unpinned residency".
func TestConcurrentChurn(t *testing.T) {
	p := New(2)
	const workers, iters, keys = 8, 300, 7
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := Key{"C", (w + i) % keys}
				want := fmt.Sprintf("C/%d", k.Attr)
				load := func() (any, error) { return want, nil }
				if i%3 == 0 {
					v, rel, err := p.Pin(k, load)
					if err != nil || v != want {
						panic(fmt.Sprintf("Pin(%v) = %v, %v", k, v, err))
					}
					rel()
				} else {
					v, err := p.Get(k, load)
					if err != nil || v != want {
						panic(fmt.Sprintf("Get(%v) = %v, %v", k, v, err))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats()
	if st.Pinned != 0 {
		t.Fatalf("pins leaked: %+v", st)
	}
	if st.Resident > st.Budget {
		t.Fatalf("unpinned residency %d exceeds budget %d", st.Resident, st.Budget)
	}
	if st.Faults == 0 || st.Evictions == 0 {
		t.Fatalf("churn exercised no faults/evictions: %+v", st)
	}
}
