// Package pager provides the buffer pool behind out-of-core snapshot
// loading: a fixed budget of resident column sections, faulted in on
// first touch, evicted LRU when the budget is exceeded, and pinnable
// for the duration of a window materialization.
//
// The pool bounds *residency*, not validity: evicting an entry only
// drops the pool's reference to the decoded column, so slices already
// loaned to callers stay valid (the garbage collector keeps them alive
// until the caller drops them). Pins therefore exist to bound rework —
// a pinned section cannot be evicted and re-faulted while a window is
// mid-materialization — not to prevent use-after-free, which the
// runtime already rules out.
package pager

import (
	"container/list"
	"sync"
	"time"
)

// Key identifies one faultable section: an attribute column of a node
// type.
type Key struct {
	// Type is the owning node type's name.
	Type string
	// Attr is the attribute ordinal within the type.
	Attr int
}

// Stats is a snapshot of the pool's telemetry counters.
type Stats struct {
	// Budget is the configured maximum of resident sections (pins may
	// force a temporary overshoot).
	Budget int
	// Resident is the number of sections currently held by the pool.
	Resident int
	// Pinned is the number of resident sections with at least one pin.
	Pinned int
	// Faults counts loads performed (singleflighted concurrent faults
	// for one section count once).
	Faults int64
	// Evictions counts sections dropped to enforce the budget.
	Evictions int64
	// FaultNanos is the cumulative wall time spent in loaders.
	FaultNanos int64
}

// entry is one resident section.
type entry struct {
	val  any
	pins int
	elem *list.Element // position in the LRU list; nil while pinned
}

// call is an in-flight fault, shared by every goroutine requesting the
// same section concurrently.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// Pool is a bounded buffer pool of decoded sections. The zero value is
// not usable; construct with New. All methods are safe for concurrent
// use.
type Pool struct {
	mu       sync.Mutex
	budget   int
	entries  map[Key]*entry
	lru      *list.List // unpinned entries, front = most recently used
	inflight map[Key]*call

	faults     int64
	evictions  int64
	faultNanos int64
}

// New returns a pool that keeps at most budget sections resident
// (minimum 1). Pinned sections never count against evictability, so
// the resident count can exceed the budget while more than budget
// sections are simultaneously pinned; it falls back under the budget
// as pins release.
func New(budget int) *Pool {
	if budget < 1 {
		budget = 1
	}
	return &Pool{
		budget:   budget,
		entries:  make(map[Key]*entry),
		lru:      list.New(),
		inflight: make(map[Key]*call),
	}
}

// Get returns the section for key, faulting it in via load if it is
// not resident. Concurrent Gets for one key share a single load
// (singleflight). A load error is returned to every waiter and is NOT
// cached: the section is simply absent afterwards, so a later Get
// retries the load — a transient or since-repaired failure does not
// poison the pool.
func (p *Pool) Get(key Key, load func() (any, error)) (any, error) {
	v, release, err := p.acquire(key, load, false)
	if release != nil {
		release()
	}
	return v, err
}

// Pin is Get plus a residency guarantee: until the returned release is
// called, the section is exempt from eviction. release must be called
// exactly once; it is safe to call from a different goroutine.
func (p *Pool) Pin(key Key, load func() (any, error)) (any, func(), error) {
	return p.acquire(key, load, true)
}

func (p *Pool) acquire(key Key, load func() (any, error), pin bool) (any, func(), error) {
	for {
		p.mu.Lock()
		if e, ok := p.entries[key]; ok {
			var release func()
			if pin {
				p.pinLocked(e)
				release = func() { p.unpin(key) }
			} else {
				p.touchLocked(e)
			}
			v := e.val
			p.mu.Unlock()
			return v, release, nil
		}
		if c, ok := p.inflight[key]; ok {
			p.mu.Unlock()
			<-c.done
			if c.err != nil {
				return nil, nil, c.err
			}
			// The loader succeeded, but between its insert and our
			// re-lock the section may already have been evicted (tiny
			// budgets under churn). Loop: the re-check either finds the
			// entry or re-faults it.
			continue
		}
		c := &call{done: make(chan struct{})}
		p.inflight[key] = c
		p.mu.Unlock()

		start := time.Now()
		v, err := load()
		elapsed := time.Since(start).Nanoseconds()

		p.mu.Lock()
		p.faults++
		p.faultNanos += elapsed
		delete(p.inflight, key)
		c.val, c.err = v, err
		if err != nil {
			p.mu.Unlock()
			close(c.done)
			return nil, nil, err
		}
		e := &entry{val: v}
		p.entries[key] = e
		var release func()
		if pin {
			e.pins = 1
			release = func() { p.unpin(key) }
		} else {
			e.elem = p.lru.PushFront(lruKey(key))
		}
		p.evictLocked()
		p.mu.Unlock()
		close(c.done)
		return v, release, nil
	}
}

// lruKey is the value stored in LRU elements (just the key; the entry
// lives in the map).
type lruKey = Key

// pinLocked marks e pinned, removing it from the eviction order.
func (p *Pool) pinLocked(e *entry) {
	e.pins++
	if e.elem != nil {
		p.lru.Remove(e.elem)
		e.elem = nil
	}
}

// touchLocked moves an unpinned entry to most-recently-used.
func (p *Pool) touchLocked(e *entry) {
	if e.elem != nil {
		p.lru.MoveToFront(e.elem)
	}
}

// unpin decrements a pin and, at zero, returns the entry to the LRU
// order (most-recently-used — the window just read it) and re-enforces
// the budget.
func (p *Pool) unpin(key Key) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[key]
	if !ok || e.pins == 0 {
		return
	}
	e.pins--
	if e.pins == 0 {
		e.elem = p.lru.PushFront(lruKey(key))
		p.evictLocked()
	}
}

// evictLocked drops least-recently-used unpinned entries until the
// resident count is within budget (or nothing evictable remains).
func (p *Pool) evictLocked() {
	for len(p.entries) > p.budget {
		back := p.lru.Back()
		if back == nil {
			return // everything resident is pinned; overshoot until release
		}
		key := back.Value.(lruKey)
		p.lru.Remove(back)
		delete(p.entries, key)
		p.evictions++
	}
}

// Stats returns a consistent snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	pinned := 0
	for _, e := range p.entries {
		if e.pins > 0 {
			pinned++
		}
	}
	return Stats{
		Budget:     p.budget,
		Resident:   len(p.entries),
		Pinned:     pinned,
		Faults:     p.faults,
		Evictions:  p.evictions,
		FaultNanos: p.faultNanos,
	}
}
