//go:build !linux && !darwin

package pager

import (
	"errors"
	"os"
)

// mmap is unavailable on this platform; File falls back to ReadAt.
func mmap(*os.File, int64) ([]byte, error) {
	return nil, errors.New("pager: mmap not supported on this platform")
}

func munmap([]byte) error { return nil }
