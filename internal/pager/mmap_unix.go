//go:build linux || darwin

package pager

import (
	"os"
	"syscall"
)

// mmap maps size bytes of f read-only, shared. A shared mapping tracks
// the underlying file: tests repair an in-place corruption with WriteAt
// and expect the next fault to observe the fixed bytes.
func mmap(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(data []byte) error {
	return syscall.Munmap(data)
}
