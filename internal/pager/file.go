package pager

import (
	"fmt"
	"os"
)

// File is a read-only random-access view of a snapshot file. On
// platforms with mmap support (linux, darwin) the whole file is mapped
// and Slice returns zero-copy sub-slices of the mapping; elsewhere
// Slice falls back to allocate-and-ReadAt. Either way the returned
// bytes must be treated as immutable.
type File struct {
	f    *os.File
	data []byte // the mmap view; nil when using the ReadAt fallback
	size int64
}

// OpenFile opens path for random access.
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	pf := &File{f: f, size: st.Size()}
	if pf.size > 0 {
		if data, err := mmap(f, pf.size); err == nil {
			pf.data = data
		}
		// mmap failure is not fatal: ReadAt serves the same bytes.
	}
	return pf, nil
}

// Size returns the file's length in bytes.
func (pf *File) Size() int64 { return pf.size }

// Mapped reports whether the file is served from an mmap view
// (zero-copy slices) rather than the ReadAt fallback.
func (pf *File) Mapped() bool { return pf.data != nil }

// Slice returns n bytes at offset off. With an mmap view this is a
// zero-copy sub-slice of the mapping; the fallback allocates and reads.
// The caller must not modify the returned bytes.
func (pf *File) Slice(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > pf.size {
		return nil, fmt.Errorf("pager: slice [%d, %d) outside file of %d bytes", off, off+n, pf.size)
	}
	if pf.data != nil {
		return pf.data[off : off+n : off+n], nil
	}
	buf := make([]byte, n)
	if _, err := pf.f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

// Close unmaps and closes the file. Slices previously returned from an
// mmap view become invalid: callers must not use them after Close.
// (Decoded columns are unaffected — decoding copies what it needs.)
func (pf *File) Close() error {
	var errUnmap error
	if pf.data != nil {
		errUnmap = munmap(pf.data)
		pf.data = nil
	}
	errClose := pf.f.Close()
	if errUnmap != nil {
		return errUnmap
	}
	return errClose
}
