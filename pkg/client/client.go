// Package client is the typed Go SDK for the ETable /api/v1 protocol —
// the programmatic counterpart of the browser UI. It speaks the
// declarative operation algebra (see the Op builders in ops.go): create
// a session, apply ops singly or as atomic batch pipelines, page through
// results with offset/limit or opaque cursors, and export/replay the
// session's operation log to survive server-side eviction.
//
//	c := client.New("http://localhost:8080")
//	sess, _ := c.NewSession(ctx, client.Open("Papers"))
//	st, _ := sess.Do(ctx, client.Filter("year > 2005"), client.Pivot("Authors"))
//	for it := sess.Rows(ctx, 100); it.Next(); {
//		fmt.Println(it.Row().Label)
//	}
//
// Transient failures (network errors, 5xx) on idempotent requests —
// reads and replay — are retried with exponential backoff; op-applying
// POSTs are never retried automatically, because the server may have
// applied the ops before the connection died. Structured API errors
// surface as *APIError with the server's stable machine-readable code.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// APIError is a non-2xx response decoded from the server's structured
// error envelope {code, message, op_index}.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable code, e.g. "invalid_op",
	// "op_failed", "session_expired", "stale_cursor".
	Code string
	// Message is the human-readable description.
	Message string
	// OpIndex is the index of the failing op in a batch, or -1.
	OpIndex int
}

// Error implements error.
func (e *APIError) Error() string {
	if e.OpIndex >= 0 {
		return fmt.Sprintf("etable: %d %s: op %d: %s", e.Status, e.Code, e.OpIndex, e.Message)
	}
	return fmt.Sprintf("etable: %d %s: %s", e.Status, e.Code, e.Message)
}

// IsGone reports whether the session was evicted server-side (410): the
// caller should create a fresh session and Replay its exported log.
func (e *APIError) IsGone() bool { return e.Status == http.StatusGone }

// Client is an /api/v1 client. It is safe for concurrent use.
type Client struct {
	base string
	// prefix is the API root every session/schema path hangs off:
	// "/api/v1" for the default dataset, "/api/v1/datasets/{name}" for
	// a Dataset-scoped client.
	prefix  string
	hc      *http.Client
	retries int
	backoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times an idempotent request is retried after
// a transient failure (network error or 5xx) and the initial backoff,
// doubled per attempt. The default is 2 retries starting at 100ms.
// Non-idempotent requests (NewSession, Do/DoPaged) are never retried.
func WithRetries(n int, backoff time.Duration) Option {
	return func(c *Client) { c.retries, c.backoff = n, backoff }
}

// New creates a client for an ETable server, e.g.
// New("http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		prefix:  "/api/v1",
		hc:      http.DefaultClient,
		retries: 2,
		backoff: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Dataset returns a client scoped to one named dataset on a
// multi-dataset server: its sessions, schema, and ops all route through
// /api/v1/datasets/{name}/. The receiver is unchanged; scoped and
// unscoped clients share the same connection pool and options. Global
// endpoints (Stats, Datasets) are identical through either.
func (c *Client) Dataset(name string) *Client {
	scoped := *c
	scoped.prefix = "/api/v1/datasets/" + url.PathEscape(name)
	return &scoped
}

// do issues one request and decodes the JSON response into out (unless
// out is nil). Only requests the caller marks idempotent are retried
// after transport errors or 5xx responses: an op-applying POST may have
// mutated the session before the connection died, and blindly repeating
// it would double-apply. 4xx responses are never retried.
func (c *Client) do(ctx context.Context, method, path string, idempotent bool, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("etable: encoding request: %w", err)
		}
	}
	retries := c.retries
	if !idempotent {
		retries = 0
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.backoff << (attempt - 1)):
			}
		}
		var rd *bytes.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		} else {
			rd = bytes.NewReader(nil)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			continue // transport error: retry
		}
		if resp.StatusCode >= 500 {
			lastErr = decodeAPIError(resp)
			resp.Body.Close()
			continue // server error: retry
		}
		if resp.StatusCode >= 300 {
			defer resp.Body.Close()
			return decodeAPIError(resp) // client error: never retry
		}
		defer resp.Body.Close()
		if out == nil {
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("etable: decoding response: %w", err)
		}
		return nil
	}
	return fmt.Errorf("etable: giving up after %d attempts: %w", retries+1, lastErr)
}

// decodeAPIError reads the structured error envelope; body must still be
// open. Undecodable bodies still yield the status code.
func decodeAPIError(resp *http.Response) *APIError {
	ae := &APIError{Status: resp.StatusCode, OpIndex: -1}
	var env struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		OpIndex *int   `json:"op_index"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err == nil {
		ae.Code, ae.Message = env.Code, env.Message
		if env.OpIndex != nil {
			ae.OpIndex = *env.OpIndex
		}
	}
	if ae.Message == "" {
		ae.Message = http.StatusText(resp.StatusCode)
	}
	return ae
}

// Schema is the GET /api/v1/schema payload.
type Schema struct {
	NodeTypes []NodeType `json:"nodeTypes"`
	EdgeTypes []EdgeType `json:"edgeTypes"`
}

// NodeType describes one node type of the typed graph model.
type NodeType struct {
	Name  string   `json:"name"`
	Kind  string   `json:"kind"`
	Label string   `json:"label"`
	Attrs []string `json:"attrs"`
	Count int      `json:"count"`
}

// EdgeType describes one edge type of the typed graph model.
type EdgeType struct {
	Name   string `json:"name"`
	Label  string `json:"label"`
	Source string `json:"source"`
	Target string `json:"target"`
	Kind   string `json:"kind"`
}

// Stats is the GET /api/v1/stats payload.
type Stats struct {
	Sessions     int   `json:"sessions"`
	CacheEntries int   `json:"cacheEntries"`
	CacheHits    int64 `json:"cacheHits"`
	CacheMisses  int64 `json:"cacheMisses"`
	// PinnedRelations counts execution-cache entries pinned by session
	// presentation memos — relations being paged against, exempt from
	// cache eviction until their sessions move on.
	PinnedRelations int `json:"pinnedRelations"`
}

// DatasetInfo is one dataset in the GET /api/v1/datasets payload.
type DatasetInfo struct {
	Name    string `json:"name"`
	Default bool   `json:"default"`
	// Loaded is false for a lazy snapshot dataset no request has
	// touched; the first session on it pays the load.
	Loaded bool `json:"loaded"`
	// Source is "memory" or "snapshot".
	Source string `json:"source"`
	// Lazy marks snapshot datasets served out-of-core (columns page in
	// on demand through a bounded buffer pool).
	Lazy bool `json:"lazy"`
	// FileBytes and FileSections describe the snapshot file itself,
	// read from its header at registration — populated before any load.
	FileBytes     int64   `json:"fileBytes"`
	FileSections  int     `json:"fileSections"`
	SnapshotBytes int64   `json:"snapshotBytes"`
	LoadMs        float64 `json:"loadMs"`
	Nodes         int     `json:"nodes"`
	Edges         int     `json:"edges"`
	Sessions      int     `json:"sessions"`
}

// Datasets lists the server's registered datasets. Scope a client to
// one of them with Dataset(name).
func (c *Client) Datasets(ctx context.Context) ([]DatasetInfo, error) {
	var out struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	if err := c.do(ctx, http.MethodGet, "/api/v1/datasets", true, nil, &out); err != nil {
		return nil, err
	}
	return out.Datasets, nil
}

// Schema fetches the TGDB schema (the scoped dataset's schema on a
// Dataset client).
func (c *Client) Schema(ctx context.Context) (*Schema, error) {
	var out Schema
	if err := c.do(ctx, http.MethodGet, c.prefix+"/schema", true, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the serving-core health counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var out Stats
	if err := c.do(ctx, http.MethodGet, "/api/v1/stats", true, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// State is one session snapshot: the pattern, the visible row window,
// and the history. NextCursor, when non-empty, pages to the next window.
type State struct {
	ID         int64    `json:"id"`
	Pattern    string   `json:"pattern"`
	Columns    []Column `json:"columns"`
	Rows       []Row    `json:"rows"`
	TotalRows  int      `json:"totalRows"`
	Offset     int      `json:"offset"`
	NextCursor string   `json:"nextCursor"`
	History    []Action `json:"history"`
	Cursor     int      `json:"cursor"`
}

// Column is one enriched-table column header.
type Column struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// Row is one enriched-table row.
type Row struct {
	Node  int64  `json:"node"`
	Label string `json:"label"`
	Cells []Cell `json:"cells"`
}

// Cell is one table cell: a formatted value (base-attribute columns) or
// a set of entity references with its count.
type Cell struct {
	Value string `json:"value"`
	Refs  []Ref  `json:"refs"`
	Count int    `json:"count"`
}

// Ref is one clickable entity reference.
type Ref struct {
	ID    int64  `json:"id"`
	Label string `json:"label"`
}

// Action is one history item of a state snapshot.
type Action struct {
	Action string `json:"action"`
}

// History is the GET .../history payload: the human-readable entries
// plus the replayable operation log (Ops, Cursor).
type History struct {
	ID      int64          `json:"id"`
	Entries []HistoryEntry `json:"entries"`
	Ops     []Op           `json:"ops"`
	Cursor  int            `json:"cursor"`
}

// HistoryEntry is one history item with its originating op and the
// pattern in effect after it.
type HistoryEntry struct {
	Action  string `json:"action"`
	Pattern string `json:"pattern"`
	Op      Op     `json:"op"`
}

// Log is a replayable operation log — the body of POST .../replay.
// Extract it from a History with its Log method.
type Log struct {
	Ops    []Op `json:"ops"`
	Cursor int  `json:"cursor"`
}

// Log extracts the replayable operation log of a history.
func (h *History) Log() Log { return Log{Ops: h.Ops, Cursor: h.Cursor} }

// Session is a handle on one server-side session.
type Session struct {
	c  *Client
	id int64
}

// ID returns the server-side session id.
func (s *Session) ID() int64 { return s.id }

// NewSession creates a session, optionally applying initial ops in the
// same round trip (e.g. NewSession(ctx, client.Open("Papers"))).
func (c *Client) NewSession(ctx context.Context, initial ...Op) (*Session, *State, error) {
	var body any
	if len(initial) > 0 {
		body = map[string]any{"ops": initial}
	}
	var st State
	if err := c.do(ctx, http.MethodPost, c.prefix+"/sessions", false, body, &st); err != nil {
		return nil, nil, err
	}
	return &Session{c: c, id: st.ID}, &st, nil
}

// Session attaches to an existing session id (e.g. one persisted by a
// previous process).
func (c *Client) Session(id int64) *Session { return &Session{c: c, id: id} }

// Page selects the row window of a state request.
type Page struct {
	// Offset and Limit select an explicit window. Limit 0 with HasLimit
	// false means the server default.
	Offset   int
	Limit    int
	HasLimit bool
	// Cursor, when non-empty, continues from a previous response's
	// NextCursor and overrides Offset/Limit. Valid for State/Rows only;
	// DoPaged rejects it (the ops would invalidate it mid-request).
	Cursor string
}

// Limit builds a Page with just a row limit.
func Limit(n int) Page { return Page{Limit: n, HasLimit: true} }

// Window builds a Page with an explicit offset and limit.
func Window(offset, limit int) Page { return Page{Offset: offset, Limit: limit, HasLimit: true} }

// query renders the page as URL query parameters.
func (p Page) query() string {
	q := url.Values{}
	if p.Cursor != "" {
		q.Set("cursor", p.Cursor)
	} else {
		if p.Offset > 0 {
			q.Set("offset", strconv.Itoa(p.Offset))
		}
		if p.HasLimit {
			q.Set("limit", strconv.Itoa(p.Limit))
		}
	}
	if len(q) == 0 {
		return ""
	}
	return "?" + q.Encode()
}

// State fetches the session snapshot, paged per page (zero Page = server
// defaults).
func (s *Session) State(ctx context.Context, page Page) (*State, error) {
	var st State
	path := fmt.Sprintf("%s/sessions/%d%s", s.c.prefix, s.id, page.query())
	if err := s.c.do(ctx, http.MethodGet, path, true, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Do applies one op or an atomic batch pipeline and returns the
// resulting snapshot. A batch either fully applies or leaves the session
// untouched (the *APIError carries the failing op's index).
func (s *Session) Do(ctx context.Context, ops ...Op) (*State, error) {
	return s.DoPaged(ctx, Page{}, ops...)
}

// DoPaged is Do with an explicit row window (offset/limit) on the
// response snapshot. Continuation cursors are not accepted here: a
// cursor is bound to the table state it was issued against, which the
// ops are about to change — page the new state with State or Rows.
func (s *Session) DoPaged(ctx context.Context, page Page, ops ...Op) (*State, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("etable: no ops to apply")
	}
	if page.Cursor != "" {
		return nil, fmt.Errorf("etable: a cursor cannot page an op response; use offset/limit")
	}
	var body any = ops
	if len(ops) == 1 {
		body = ops[0]
	}
	var st State
	path := fmt.Sprintf("%s/sessions/%d/ops%s", s.c.prefix, s.id, page.query())
	if err := s.c.do(ctx, http.MethodPost, path, false, body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// History fetches the session's history and replayable operation log.
func (s *Session) History(ctx context.Context) (*History, error) {
	var h History
	if err := s.c.do(ctx, http.MethodGet, fmt.Sprintf("%s/sessions/%d/history", s.c.prefix, s.id), true, nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Replay resets the session and re-executes an exported operation log,
// deterministically reproducing the state it was exported from.
func (s *Session) Replay(ctx context.Context, log Log) (*State, error) {
	var st State
	if err := s.c.do(ctx, http.MethodPost, fmt.Sprintf("%s/sessions/%d/replay", s.c.prefix, s.id), true, log, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// RowIterator pages through a session's rows with opaque cursors; see
// Session.Rows.
type RowIterator struct {
	ctx      context.Context
	sess     *Session
	pageSize int

	rows  []Row
	i     int
	next  string
	total int
	begun bool
	err   error
}

// Rows returns an iterator over the current table's rows, fetching
// pageSize rows per request (pageSize <= 0 uses the server default, in
// which case the server must have one configured to make progress).
//
//	for it := sess.Rows(ctx, 500); it.Next(); {
//		r := it.Row()
//		...
//	}
//	if it.Err() != nil { ... }
func (s *Session) Rows(ctx context.Context, pageSize int) *RowIterator {
	return &RowIterator{ctx: ctx, sess: s, pageSize: pageSize}
}

// Next advances to the next row, fetching the next page as needed. It
// returns false at the end of the table or on error (check Err).
func (it *RowIterator) Next() bool {
	if it.err != nil {
		return false
	}
	if it.i+1 < len(it.rows) {
		it.i++
		return true
	}
	if it.begun && it.next == "" {
		return false
	}
	page := Page{Cursor: it.next}
	if !it.begun && it.pageSize > 0 {
		page = Limit(it.pageSize)
	}
	st, err := it.sess.State(it.ctx, page)
	if err != nil {
		it.err = err
		return false
	}
	it.begun = true
	it.rows, it.i = st.Rows, 0
	it.next = st.NextCursor
	it.total = st.TotalRows
	if len(it.rows) == 0 {
		return false
	}
	return true
}

// Row returns the current row. Valid only after Next returned true.
func (it *RowIterator) Row() Row { return it.rows[it.i] }

// TotalRows returns the table's total row count (known after the first
// Next).
func (it *RowIterator) TotalRows() int { return it.total }

// Err returns the first error the iterator hit, if any.
func (it *RowIterator) Err() error { return it.err }
