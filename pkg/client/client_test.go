package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ops"
	"repro/internal/server"
	"repro/internal/testdb"
)

func newServer(t testing.TB, opts server.Options) *httptest.Server {
	t.Helper()
	tr, err := testdb.Figure3Translation()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewWithOptions(tr.Schema, tr.Instance, opts))
	t.Cleanup(ts.Close)
	return ts
}

// TestFigure1Pipeline is the acceptance integration test: the SDK drives
// a full Figure-1-style open → filter → pivot exploration through one
// /api/v1 batch op request.
func TestFigure1Pipeline(t *testing.T) {
	ts := newServer(t, server.Options{})
	c := New(ts.URL)
	ctx := context.Background()

	sess, st, err := c.NewSession(ctx, Open("Papers"))
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalRows != 6 || sess.ID() == 0 {
		t.Fatalf("create state: total=%d id=%d", st.TotalRows, sess.ID())
	}

	// The Figure 1 exploration as one atomic batch.
	st, err = sess.Do(ctx,
		Filter("year > 2010"),
		Pivot("Authors"),
		SortByCount("Papers", true),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.Pattern, "*Authors") {
		t.Errorf("pattern = %q", st.Pattern)
	}
	if len(st.History) != 4 || st.Cursor != 3 {
		t.Errorf("history = %d entries, cursor %d", len(st.History), st.Cursor)
	}
	if len(st.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Most prolific post-2010 author leads after the count sort.
	top := st.Rows[0]
	var papersCol = -1
	for i, col := range st.Columns {
		if col.Name == "Papers" {
			papersCol = i
		}
	}
	if papersCol < 0 {
		t.Fatalf("no Papers column in %+v", st.Columns)
	}
	if top.Cells[papersCol].Count == 0 {
		t.Errorf("top author has no papers: %+v", top)
	}

	// A failing batch reports the op index and changes nothing.
	_, err = sess.Do(ctx, Revert(0), Pivot("NoSuchColumn"))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != "op_failed" || ae.OpIndex != 1 {
		t.Fatalf("batch error = %v", err)
	}
	after, err := sess.State(ctx, Page{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Cursor != 3 || len(after.History) != 4 {
		t.Errorf("failed batch mutated session: %+v", after)
	}
}

func TestHistoryExportReplay(t *testing.T) {
	ts := newServer(t, server.Options{})
	c := New(ts.URL)
	ctx := context.Background()

	sess, _, err := c.NewSession(ctx, Open("Papers"), Filter("year > 2010"), Pivot("Authors"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Do(ctx, Revert(1)); err != nil {
		t.Fatal(err)
	}
	h, err := sess.History(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Ops) != 3 || h.Cursor != 1 {
		t.Fatalf("history = %d ops, cursor %d", len(h.Ops), h.Cursor)
	}

	// New session, replay, compare snapshots.
	sess2, _, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := sess2.Replay(ctx, h.Log())
	if err != nil {
		t.Fatal(err)
	}
	orig, err := sess.State(ctx, Page{})
	if err != nil {
		t.Fatal(err)
	}
	replayed.ID, orig.ID = 0, 0
	rj, _ := json.Marshal(replayed)
	oj, _ := json.Marshal(orig)
	if string(rj) != string(oj) {
		t.Errorf("replayed differs:\n%s\n%s", oj, rj)
	}
}

func TestRowIterator(t *testing.T) {
	ts := newServer(t, server.Options{})
	c := New(ts.URL)
	ctx := context.Background()

	sess, _, err := c.NewSession(ctx, Open("Papers"))
	if err != nil {
		t.Fatal(err)
	}
	var labels []string
	it := sess.Rows(ctx, 2) // 6 rows → 3 pages
	for it.Next() {
		labels = append(labels, it.Row().Label)
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(labels) != 6 || it.TotalRows() != 6 {
		t.Errorf("iterated %d rows (total %d)", len(labels), it.TotalRows())
	}
	seen := map[string]bool{}
	for _, l := range labels {
		if seen[l] {
			t.Errorf("duplicate row %q", l)
		}
		seen[l] = true
	}

	// Explicit-window State still works alongside.
	st, err := sess.State(ctx, Window(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Rows) != 2 || st.Offset != 4 {
		t.Errorf("window: rows=%d offset=%d", len(st.Rows), st.Offset)
	}
}

// TestRetryBackoff: transient 5xx responses are retried with backoff;
// 4xx responses are not.
func TestRetryBackoff(t *testing.T) {
	var calls atomic.Int32
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= 2 {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"sessions":1,"cacheEntries":0,"cacheHits":0,"cacheMisses":0}`))
	}))
	defer backend.Close()

	c := New(backend.URL, WithRetries(3, time.Millisecond))
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 1 || calls.Load() != 3 {
		t.Errorf("stats=%+v calls=%d", st, calls.Load())
	}

	// Exhausted retries surface the last error.
	calls.Store(-100)
	c2 := New(backend.URL, WithRetries(1, time.Millisecond))
	if _, err := c2.Stats(context.Background()); err == nil {
		t.Error("exhausted retries did not error")
	}

	// 4xx: exactly one call, typed error.
	var calls4 atomic.Int32
	backend4 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls4.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGone)
		w.Write([]byte(`{"code":"session_expired","message":"gone"}`))
	}))
	defer backend4.Close()
	c3 := New(backend4.URL, WithRetries(5, time.Millisecond))
	_, err = c3.Session(7).State(context.Background(), Page{})
	var ae *APIError
	if !errors.As(err, &ae) || !ae.IsGone() || ae.Code != "session_expired" {
		t.Fatalf("err = %v", err)
	}
	if calls4.Load() != 1 {
		t.Errorf("4xx retried: %d calls", calls4.Load())
	}
}

// TestSessionGoneRecovery: the IsGone signal drives the export/replay
// recovery loop against a real server with aggressive TTL eviction.
func TestSessionGoneRecovery(t *testing.T) {
	ts := newServer(t, server.Options{MaxSessions: 1, SessionTTL: -1})
	c := New(ts.URL)
	ctx := context.Background()

	sess, _, err := c.NewSession(ctx, Open("Papers"), Filter("year > 2010"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.History(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// A second session evicts the first (MaxSessions: 1).
	if _, _, err := c.NewSession(ctx); err != nil {
		t.Fatal(err)
	}
	_, err = sess.State(ctx, Page{})
	var ae *APIError
	if !errors.As(err, &ae) || !ae.IsGone() {
		t.Fatalf("evicted state err = %v", err)
	}
	// Recover.
	sess2, _, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sess2.Replay(ctx, h.Log())
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalRows != 4 {
		t.Errorf("recovered total = %d", st.TotalRows)
	}
}

// TestOpWireFormat pins the SDK's wire encoding to the protocol's: the
// JSON of every builder op must decode as a valid internal/ops op.
func TestOpWireFormat(t *testing.T) {
	tr, err := testdb.Figure3Translation()
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []Op{
		Open("Papers"),
		Filter("year > 2010"),
		FilterByNeighbor("Authors", "name = 'X'"),
		Pivot("Authors"),
		Single(3),
		Seeall(3, "Authors"),
		SortByAttr("year", true),
		SortByCount("Papers", false),
		Hide("year"),
		Show("year"),
		Revert(0),
	} {
		enc, err := json.Marshal(op)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := ops.Decode(enc)
		if err != nil {
			t.Errorf("%s: protocol rejects SDK encoding: %v", enc, err)
			continue
		}
		if err := decoded.Validate(tr.Schema); err != nil {
			t.Errorf("%s: protocol validation: %v", enc, err)
		}
	}
}
