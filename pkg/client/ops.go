package client

// Op is one declarative operation of the /api/v1 protocol: the "op"
// field selects the kind, the remaining fields are that kind's operands.
// Construct ops with the builder functions below; the JSON encoding of
// an Op is exactly the wire format POST .../ops accepts (docs/API.md).
type Op struct {
	Op     string `json:"op"`
	Table  string `json:"table,omitempty"`
	Cond   string `json:"cond,omitempty"`
	Column string `json:"column,omitempty"`
	// Node is a pointer because node ids start at 0: "node omitted" and
	// "node 0" must stay distinguishable on the wire. The Single/Seeall
	// builders set it from a plain int64.
	Node  *int64 `json:"node,omitempty"`
	Attr  string `json:"attr,omitempty"`
	Desc  bool   `json:"desc,omitempty"`
	Index int    `json:"index,omitempty"`
}

// Open starts a new ETable from a node type.
func Open(table string) Op { return Op{Op: "open", Table: table} }

// Filter applies a condition to the current primary node type, e.g.
// Filter("year > 2005 AND venue = 'SIGMOD'").
func Filter(cond string) Op { return Op{Op: "filter", Cond: cond} }

// FilterByNeighbor filters rows by a condition on a neighbor column,
// e.g. FilterByNeighbor("Authors", "name = 'H. V. Jagadish'").
func FilterByNeighbor(column, cond string) Op {
	return Op{Op: "filter_neighbor", Column: column, Cond: cond}
}

// Pivot changes the primary node type through an entity-reference column.
func Pivot(column string) Op { return Op{Op: "pivot", Column: column} }

// Single opens a one-row ETable for a clicked entity reference.
func Single(node int64) Op { return Op{Op: "single", Node: &node} }

// Seeall lists the complete entity-reference set of one cell.
func Seeall(node int64, column string) Op {
	return Op{Op: "seeall", Node: &node, Column: column}
}

// SortByAttr orders rows by a base attribute value.
func SortByAttr(attr string, desc bool) Op { return Op{Op: "sort", Attr: attr, Desc: desc} }

// SortByCount orders rows by the reference count of an entity-reference
// column ("Sort table by # of …").
func SortByCount(column string, desc bool) Op {
	return Op{Op: "sort", Column: column, Desc: desc}
}

// Hide removes a column from the presentation.
func Hide(column string) Op { return Op{Op: "hide", Column: column} }

// Show re-adds a hidden column.
func Show(column string) Op { return Op{Op: "show", Column: column} }

// Revert moves the session back (or forward) to history entry index.
func Revert(index int) Op { return Op{Op: "revert", Index: index} }
