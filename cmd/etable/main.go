// Command etable is an interactive terminal client for browsing the
// academic database through the ETable model: the user-level actions of
// §6.1 (open, filter, pivot, single, seeall, sort, hide/show, history,
// revert) plus the §8 SQL bridge (translate a join query into a pattern
// and run it).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/etable"
	"repro/internal/render"
	"repro/internal/session"
	"repro/internal/sqlbridge"
	"repro/internal/tgm"
	"repro/internal/translate"
)

const help = `commands:
  tables                      list node types (the default table list)
  open <type>                 open a table           (Initiate)
  filter <condition>          filter primary rows    (Select)
  nfilter <column> <cond>     filter via a neighbor column
  pivot <column>              pivot on a column      (Add / Shift)
  single <node-id>            show one entity        (Initiate+Select)
  seeall <node-id> <column>   expand one cell        (Select+Add/Shift)
  sort <column|attr> [asc]    sort rows (reference columns sort by count)
  hide <column> / show <column>
  history                     list past actions
  revert <n>                  return to history entry n
  sql <SELECT …>              translate a join query (§8) and run it
  pattern                     print the current query pattern
  rows <n>                    set the display row limit
  help / quit`

func main() {
	log.SetFlags(0)
	papers := flag.Int("papers", 2000, "papers in the generated corpus")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "generating %d-paper corpus…\n", *papers)
	db, err := dataset.Generate(dataset.Config{Papers: *papers, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := translate.Translate(db, translate.Options{
		CategoricalAttrs: []string{"Papers.year", "Institutions.country"},
	})
	if err != nil {
		log.Fatal(err)
	}
	sess := session.New(tr.Schema, tr.Instance)
	bridge := sqlbridge.New(tr)

	fmt.Println("ETable interactive browser — type 'help' for commands")
	maxRows := 15
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("etable> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		var err error
		show := true
		switch strings.ToLower(cmd) {
		case "quit", "exit":
			return
		case "help":
			fmt.Println(help)
			show = false
		case "tables":
			for _, nt := range sess.EntityTypes() {
				fmt.Printf("  %-36s %6d rows  (%s)\n",
					nt.Name, len(tr.Instance.NodesOfType(nt.Name)), nt.Kind)
			}
			show = false
		case "open":
			err = sess.Open(rest)
		case "filter":
			err = sess.Filter(rest)
		case "nfilter":
			col, cond, ok := strings.Cut(rest, " ")
			if !ok {
				err = fmt.Errorf("usage: nfilter <column> <condition>")
			} else {
				err = sess.FilterByNeighbor(col, strings.TrimSpace(cond))
			}
		case "pivot":
			err = sess.Pivot(rest)
		case "single":
			var id int
			if id, err = strconv.Atoi(rest); err == nil {
				err = sess.Single(tgm.NodeID(id))
			}
		case "seeall":
			idStr, col, ok := strings.Cut(rest, " ")
			if !ok {
				err = fmt.Errorf("usage: seeall <node-id> <column>")
				break
			}
			var id int
			if id, err = strconv.Atoi(idStr); err == nil {
				err = sess.Seeall(tgm.NodeID(id), strings.TrimSpace(col))
			}
		case "sort":
			key := rest
			desc := true
			if strings.HasSuffix(key, " asc") {
				key, desc = strings.TrimSuffix(key, " asc"), false
			}
			spec := etable.SortSpec{Column: key, Desc: desc}
			if err = sess.SortBy(spec); err != nil {
				spec = etable.SortSpec{Attr: key, Desc: desc}
				err = sess.SortBy(spec)
			}
		case "hide":
			err = sess.HideColumn(rest)
		case "show":
			err = sess.ShowColumn(rest)
		case "history":
			var acts []string
			for _, e := range sess.History() {
				acts = append(acts, e.Action)
			}
			render.History(os.Stdout, acts, sess.Cursor())
			show = false
		case "revert":
			var n int
			if n, err = strconv.Atoi(rest); err == nil {
				err = sess.Revert(n - 1)
			}
		case "sql":
			var p *etable.Pattern
			if p, err = bridge.Translate(rest); err == nil {
				fmt.Println("translated pattern:")
				render.Pattern(os.Stdout, p)
				var res *etable.Result
				if res, err = etable.Execute(tr.Instance, p); err == nil {
					render.Result(os.Stdout, res, render.Options{MaxRows: maxRows})
				}
			}
			show = false
		case "pattern":
			if p := sess.Pattern(); p != nil {
				render.Pattern(os.Stdout, p)
			} else {
				fmt.Println("no table open")
			}
			show = false
		case "rows":
			var n int
			if n, err = strconv.Atoi(rest); err == nil && n > 0 {
				maxRows = n
			}
			show = false
		default:
			fmt.Printf("unknown command %q — try 'help'\n", cmd)
			show = false
		}
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		if show {
			res, err := sess.Result()
			if err != nil {
				fmt.Printf("error: %v\n", err)
				continue
			}
			render.Result(os.Stdout, res, render.Options{MaxRows: maxRows})
		}
	}
}
