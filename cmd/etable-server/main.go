// Command etable-server boots the three-tier ETable system (§6.2): it
// generates the academic corpus, translates it to a TGDB, and serves the
// interactive web interface of Figure 9 plus the JSON API.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/translate"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "localhost:8080", "listen address")
	papers := flag.Int("papers", 5000, "papers in the generated corpus")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	log.Printf("generating %d-paper corpus…", *papers)
	db, err := dataset.Generate(dataset.Config{Papers: *papers, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	log.Print("translating to TGDB…")
	tr, err := translate.Translate(db, translate.Options{
		CategoricalAttrs: []string{"Papers.year", "Institutions.country"},
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := tr.Instance.ComputeStats()
	log.Printf("TGDB ready: %d nodes, %d edges", stats.Nodes, stats.Edges)

	srv := server.New(tr.Schema, tr.Instance)
	fmt.Printf("ETable serving on http://%s/\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
