// Command etable-server boots the three-tier ETable system (§6.2): it
// generates the academic corpus, translates it to a TGDB, and serves the
// interactive web interface of Figure 9 plus the JSON API to any number
// of concurrent sessions over one shared execution cache.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/dataset"
	"repro/internal/etable"
	"repro/internal/server"
	"repro/internal/translate"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "localhost:8080", "listen address")
	papers := flag.Int("papers", 5000, "papers in the generated corpus")
	seed := flag.Int64("seed", 1, "generator seed")
	cacheEntries := flag.Int("cache", 1024, "shared execution cache capacity (relations)")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this (negative disables)")
	maxSessions := flag.Int("max-sessions", 1024, "maximum live sessions (LRU-evicted beyond)")
	pageSize := flag.Int("page-size", 0, "default result rows per response (0 = all; clients may page with offset/limit)")
	maxWorkers := flag.Int("max-workers", 0, "server-wide worker cap for intra-query parallelism (0 = GOMAXPROCS, negative = serial)")
	parallelism := flag.Int("parallelism", 0, "default per-request parallelism budget (0 = min(4, GOMAXPROCS); requests may override with ?parallelism=)")
	maxRows := flag.Int("max-rows", 0, "maximum rows one request may materialize (0 = unbounded; oversized results fail with 413 result_too_large)")
	plannerFlag := flag.String("planner", "auto", "join-ordering policy: auto (adaptive by corpus size), greedy, or cost")
	flag.Parse()

	planner, err := etable.ParsePlannerMode(*plannerFlag)
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("generating %d-paper corpus…", *papers)
	db, err := dataset.Generate(dataset.Config{Papers: *papers, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	log.Print("translating to TGDB…")
	tr, err := translate.Translate(db, translate.Options{
		CategoricalAttrs: []string{"Papers.year", "Institutions.country"},
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := tr.Instance.ComputeStats()
	log.Printf("TGDB ready: %d nodes, %d edges (frozen: %v)", stats.Nodes, stats.Edges, tr.Instance.Frozen())

	srv := server.NewWithOptions(tr.Schema, tr.Instance, server.Options{
		CacheEntries: *cacheEntries,
		SessionTTL:   *sessionTTL,
		MaxSessions:  *maxSessions,
		PageSize:     *pageSize,
		MaxWorkers:   *maxWorkers,
		Parallelism:  *parallelism,
		MaxRows:      *maxRows,
		Planner:      planner,
	})
	fmt.Printf("ETable serving on http://%s/ (cache %d, ttl %s, max sessions %d, page size %d, workers %d, parallelism %d, max rows %d, planner %s)\n",
		*addr, *cacheEntries, *sessionTTL, *maxSessions, *pageSize, *maxWorkers, *parallelism, *maxRows, planner)
	fmt.Printf("API: /api/v1 (declarative ops; see docs/API.md) — legacy /api/* routes are deprecated aliases\n")
	log.Fatal(http.ListenAndServe(*addr, srv))
}
