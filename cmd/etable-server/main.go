// Command etable-server boots the three-tier ETable system (§6.2): it
// obtains a TGDB — generating and translating the academic corpus, or
// loading a pre-translated .etsnap snapshot from disk — and serves the
// interactive web interface of Figure 9 plus the JSON API to any number
// of concurrent sessions. Repeated -dataset name=path flags register
// additional snapshot-backed datasets, each lazily loaded on its first
// request and served under /api/v1/datasets/{name}/ with its own
// execution cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/etable"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/snapshot"
	"repro/internal/translate"
)

// datasetFlag accumulates repeated -dataset name=path values.
type datasetFlag struct {
	names, paths []string
}

func (f *datasetFlag) String() string { return strings.Join(f.names, ",") }

func (f *datasetFlag) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	f.names = append(f.names, name)
	f.paths = append(f.paths, path)
	return nil
}

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "localhost:8080", "listen address")
	papers := flag.Int("papers", 5000, "papers in the generated corpus")
	seed := flag.Int64("seed", 1, "generator seed")
	snapPath := flag.String("snapshot", "", "boot the default dataset from this .etsnap file instead of generating a corpus")
	lazy := flag.Bool("lazy", false, "load snapshots out-of-core: boot decodes only the skeleton, attribute columns fault in on demand through a bounded buffer pool")
	pagerSections := flag.Int("pager-sections", 0, "resident column-section budget per lazy dataset (0 = default; only with -lazy)")
	var extra datasetFlag
	flag.Var(&extra, "dataset", "register a named snapshot dataset as name=path (repeatable; loaded on first request)")
	cacheEntries := flag.Int("cache", 1024, "per-dataset execution cache capacity (relations)")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this (negative disables)")
	maxSessions := flag.Int("max-sessions", 1024, "maximum live sessions (LRU-evicted beyond)")
	pageSize := flag.Int("page-size", 0, "default result rows per response (0 = all; clients may page with offset/limit)")
	maxWorkers := flag.Int("max-workers", 0, "server-wide worker cap for intra-query parallelism (0 = GOMAXPROCS, negative = serial)")
	parallelism := flag.Int("parallelism", 0, "default per-request parallelism budget (0 = min(4, GOMAXPROCS); requests may override with ?parallelism=)")
	maxRows := flag.Int("max-rows", 0, "row threshold past which a result spills to disk, or fails with 413 result_too_large when spilling is off (0 = unbounded)")
	spillDir := flag.String("spill-dir", "", "directory for spill run files (empty = system temp dir; \"off\" disables spilling and restores strict -max-rows rejection)")
	maxSpillBytes := flag.Int64("max-spill-bytes", 0, "maximum bytes one query may spill to disk (0 = unbounded; exceeding fails with 413 result_too_large)")
	plannerFlag := flag.String("planner", "auto", "join-ordering policy: auto (adaptive by corpus size), greedy, or cost")
	flag.Parse()

	planner, err := etable.ParsePlannerMode(*plannerFlag)
	if err != nil {
		log.Fatal(err)
	}

	reg := registry.New(registry.Options{CacheEntries: *cacheEntries})
	snapOpt := registry.SnapshotOptions{Lazy: *lazy, PoolSections: *pagerSections}
	switch {
	case *snapPath != "" && *lazy:
		// Out-of-core boot: decode only the skeleton now; columns fault
		// in on demand through the bounded pager.
		start := time.Now()
		ds, err := reg.AddSnapshotOpts("default", *snapPath, snapOpt)
		if err != nil {
			log.Fatal(err)
		}
		if err := ds.Ensure(context.Background()); err != nil {
			log.Fatal(err)
		}
		g := ds.Graph()
		log.Printf("opened %s out-of-core in %s: %d nodes, %d edges (columns page in on demand)",
			*snapPath, time.Since(start).Round(time.Millisecond), g.NumNodes(), g.NumEdges())
	case *snapPath != "":
		// Boot the default dataset from disk: no generation, no
		// translation — the snapshot was both.
		start := time.Now()
		snap, err := snapshot.Load(*snapPath)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := reg.AddGraph("default", snap.Schema, snap.Graph); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %s in %s: %d nodes, %d edges (%d bytes)",
			*snapPath, time.Since(start).Round(time.Millisecond),
			snap.Info.Nodes, snap.Info.Edges, snap.Info.Bytes)
	case len(extra.names) > 0:
		// Only -dataset flags: the first named dataset is the default;
		// nothing loads until traffic arrives.
	default:
		log.Printf("generating %d-paper corpus…", *papers)
		db, err := dataset.Generate(dataset.Config{Papers: *papers, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		log.Print("translating to TGDB…")
		tr, err := translate.Translate(db, translate.Options{
			CategoricalAttrs: []string{"Papers.year", "Institutions.country"},
		})
		if err != nil {
			log.Fatal(err)
		}
		stats := tr.Instance.ComputeStats()
		log.Printf("TGDB ready: %d nodes, %d edges (frozen: %v)", stats.Nodes, stats.Edges, tr.Instance.Frozen())
		if _, err := reg.AddGraph("default", tr.Schema, tr.Instance); err != nil {
			log.Fatal(err)
		}
	}
	for i, name := range extra.names {
		if _, err := reg.AddSnapshotOpts(name, extra.paths[i], snapOpt); err != nil {
			log.Fatal(err)
		}
		mode := "deferred"
		if *lazy {
			mode = "deferred, out-of-core"
		}
		log.Printf("registered dataset %q from %s (%s)", name, extra.paths[i], mode)
	}

	srv := server.NewFromRegistry(reg, server.Options{
		CacheEntries:  *cacheEntries,
		SessionTTL:    *sessionTTL,
		MaxSessions:   *maxSessions,
		PageSize:      *pageSize,
		MaxWorkers:    *maxWorkers,
		Parallelism:   *parallelism,
		MaxRows:       *maxRows,
		SpillDir:      *spillDir,
		MaxSpillBytes: *maxSpillBytes,
		Planner:       planner,
	})
	spillInfo := "off"
	if *maxRows > 0 && *spillDir != "off" {
		spillInfo = *spillDir
		if spillInfo == "" {
			spillInfo = os.TempDir()
		}
	}
	fmt.Printf("ETable serving on http://%s/ (cache %d, ttl %s, max sessions %d, page size %d, workers %d, parallelism %d, max rows %d, spill %s, planner %s)\n",
		*addr, *cacheEntries, *sessionTTL, *maxSessions, *pageSize, *maxWorkers, *parallelism, *maxRows, spillInfo, planner)
	fmt.Printf("API: /api/v1 (declarative ops; see docs/API.md) — legacy /api/* routes are deprecated aliases\n")
	log.Fatal(http.ListenAndServe(*addr, srv))
}
