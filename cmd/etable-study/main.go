// Command etable-study runs the simulated user study over the synthetic
// academic corpus and regenerates the paper's evaluation artifacts:
// Table 2 (tasks, with answers computed in both conditions), Figure 10
// (per-task completion times, CIs, paired t-tests), Table 3 (modelled
// subjective ratings), and the §7.2 preference comparison. See DESIGN.md
// for the human-participant substitution.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/study"
	"repro/internal/translate"
)

func main() {
	log.SetFlags(0)
	papers := flag.Int("papers", 38000, "papers in the generated corpus (paper scale: 38000)")
	participants := flag.Int("participants", 12, "simulated participants")
	seed := flag.Int64("seed", 42, "simulation seed")
	altSet := flag.Bool("set-b", false, "use the second matched task set (§7.1)")
	show := flag.String("show", "all", "what to print: tasks, figure10, ratings, preferences, all")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "generating %d-paper corpus…\n", *papers)
	db, err := dataset.Generate(dataset.Config{Papers: *papers, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "translating to TGDB…")
	tr, err := translate.Translate(db, translate.Options{
		CategoricalAttrs: []string{"Papers.year", "Institutions.country"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "running simulated study…")
	rep, err := study.RunStudy(tr, db, study.Config{
		Participants: *participants, Seed: *seed, AltTaskSet: *altSet,
	})
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	switch *show {
	case "tasks":
		study.WriteTable2(w, rep)
	case "figure10":
		study.WriteFigure10(w, rep)
	case "ratings":
		study.WriteTable3(w, rep)
	case "preferences":
		study.WritePreferences(w, rep)
	case "all":
		study.WriteReport(w, rep)
	default:
		log.Fatalf("unknown -show value %q", *show)
	}
}
