// Command etable-translate runs the Appendix A relational→TGM
// translation over the academic database and prints the artifacts of the
// paper's Figures 3-5 and Table 1: the relational schema, the
// classification of relations into node/edge type categories, the TGDB
// schema graph, and an excerpt of the instance graph.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/render"
	"repro/internal/snapshot"
	"repro/internal/translate"
)

func main() {
	log.SetFlags(0)
	papers := flag.Int("papers", 2000, "papers in the generated database")
	seed := flag.Int64("seed", 1, "generator seed")
	show := flag.String("show", "categories",
		"what to print: categories (Table 1), graph (Figure 4), instances (Figure 5), schema (Figure 3), all")
	out := flag.String("o", "", "write the translated TGDB to this .etsnap snapshot file (serve it with etable-server -snapshot)")
	flag.Parse()

	db, err := dataset.Generate(dataset.Config{Papers: *papers, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := translate.Translate(db, translate.Options{
		CategoricalAttrs: []string{"Papers.year", "Institutions.country"},
	})
	if err != nil {
		log.Fatal(err)
	}

	if *out != "" {
		n, err := snapshot.SaveFile(*out, tr.Instance)
		if err != nil {
			log.Fatal(err)
		}
		st := tr.Instance.ComputeStats()
		log.Printf("wrote %s: %d bytes (%d nodes, %d edges)", *out, n, st.Nodes, st.Edges)
	}

	w := os.Stdout
	printSchema := func() {
		fmt.Fprintln(w, "Relational schema (Figure 3):")
		for _, name := range db.TableNames() {
			t, _ := db.Table(name)
			s := t.Schema()
			fmt.Fprintf(w, "  %s(", name)
			for i, c := range s.Columns {
				if i > 0 {
					fmt.Fprint(w, ", ")
				}
				fmt.Fprint(w, c.Name)
				if s.InPrimaryKey(c.Name) {
					fmt.Fprint(w, "*")
				}
				if fk, ok := s.IsForeignKey(c.Name); ok {
					fmt.Fprintf(w, "→%s.%s", fk.RefTable, fk.RefCol)
				}
			}
			fmt.Fprintf(w, ")  [%d rows]\n", t.Len())
		}
	}
	printInstances := func() {
		fmt.Fprintln(w, "Instance graph excerpt (Figure 5):")
		stats := tr.Instance.ComputeStats()
		fmt.Fprintf(w, "  %d nodes, %d directed edges\n", stats.Nodes, stats.Edges)
		for _, tn := range tr.Instance.SortedTypeNames() {
			fmt.Fprintf(w, "  %-34s %8d nodes\n", tn, stats.NodesByType[tn])
		}
		// A Figure 5-style excerpt: one paper with its neighbors.
		papers := tr.Instance.NodesOfType("Papers")
		if len(papers) > 0 {
			n := tr.Instance.Node(papers[0])
			fmt.Fprintf(w, "  example: Papers %q\n", render.Truncate(n.Label(), 40))
			for _, et := range tr.Schema.OutEdges("Papers") {
				nbs := tr.Instance.Neighbors(n.ID, et.Name)
				if len(nbs) == 0 {
					continue
				}
				var labels []string
				for i, nb := range nbs {
					if i >= 4 {
						break
					}
					labels = append(labels, render.Truncate(tr.Instance.Node(nb).Label(), 18))
				}
				fmt.Fprintf(w, "    --%s--> %v (%d total)\n", et.Label, labels, len(nbs))
			}
		}
	}

	switch *show {
	case "categories":
		render.Table1(w, tr)
	case "graph":
		render.SchemaGraph(w, tr.Schema)
	case "instances":
		printInstances()
	case "schema":
		printSchema()
	case "all":
		printSchema()
		fmt.Fprintln(w)
		render.Table1(w, tr)
		fmt.Fprintln(w)
		render.SchemaGraph(w, tr.Schema)
		fmt.Fprintln(w)
		printInstances()
	default:
		log.Fatalf("unknown -show value %q", *show)
	}
}
