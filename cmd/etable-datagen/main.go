// Command etable-datagen generates the synthetic DBLP/ACM-style academic
// database (the paper's evaluation corpus stand-in) and reports its
// shape: per-table row counts and the cardinality distributions that
// matter to ETable (authors per paper, citations, keywords).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)
	papers := flag.Int("papers", 38000, "number of papers to generate")
	authors := flag.Int("authors", 0, "number of authors (0 = papers/2)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	cfg := dataset.Config{Papers: *papers, Authors: *authors, Seed: *seed}
	db, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	stats := db.Stats()
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("Generated academic database (Figure 3 schema):")
	for _, n := range names {
		fmt.Printf("  %-18s %8d rows\n", n, stats[n])
	}

	if err := db.CheckForeignKeys(); err != nil {
		fmt.Fprintf(os.Stderr, "referential integrity check FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("referential integrity: OK")

	// Distribution summaries.
	pa, _ := db.Table("Paper_Authors")
	perPaper := map[int64]int{}
	for _, r := range pa.Rows() {
		perPaper[r[0].AsInt()]++
	}
	fmt.Printf("authors per paper: %s\n", summarize(perPaper))
	refs, _ := db.Table("Paper_References")
	inDeg := map[int64]int{}
	for _, r := range refs.Rows() {
		inDeg[r[1].AsInt()]++
	}
	fmt.Printf("citations received: %s\n", summarize(inDeg))
}

func summarize(counts map[int64]int) string {
	if len(counts) == 0 {
		return "none"
	}
	vals := make([]int, 0, len(counts))
	total := 0
	for _, c := range counts {
		vals = append(vals, c)
		total += c
	}
	sort.Ints(vals)
	mean := float64(total) / float64(len(vals))
	return fmt.Sprintf("n=%d mean=%.2f median=%d p95=%d max=%d",
		len(vals), mean, vals[len(vals)/2], vals[len(vals)*95/100], vals[len(vals)-1])
}
