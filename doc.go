// Package repro is a from-scratch Go reproduction of "Interactive
// Browsing and Navigation in Relational Databases" (Kahng, Navathe,
// Stasko, Chau; PVLDB 9(12), 2016) — the ETable presentation data model,
// the typed graph model it executes over, the incremental query
// operators and user-level actions, the three-tier system architecture,
// and the full evaluation harness that regenerates every table and
// figure of the paper. See README.md for a tour and DESIGN.md for the
// system inventory and experiment index.
package repro
