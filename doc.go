// Package repro is a from-scratch Go reproduction of "Interactive
// Browsing and Navigation in Relational Databases" (Kahng, Navathe,
// Stasko, Chau; PVLDB 9(12), 2016) — the ETable presentation data model,
// the typed graph model it executes over, the incremental query
// operators and user-level actions, the three-tier system architecture,
// and the full evaluation harness that regenerates every table and
// figure of the paper. See README.md for a tour and DESIGN.md for the
// system inventory and experiment index.
//
// # Concurrent serving core
//
// The paper's §6.2 application server hosts many interactive users over
// one immutable TGDB. The serving stack is concurrent end to end:
//
//   - internal/tgm: the instance graph is frozen after translation
//     (InstanceGraph.Freeze); every read accessor is lock-free and safe
//     for unsynchronized concurrent use because nothing mutates.
//   - internal/graphrel: relations are immutable once built and shared
//     without copying (the package documents the sharing contract).
//   - internal/etable: one etable.Cache — sharded, mutex-per-shard,
//     true LRU, with singleflight deduplication — is shared by every
//     session, so N users executing the same pattern signature compute
//     it once. Executor is a thin per-session view over the cache.
//   - internal/session: each Session has its own mutex and a small
//     presentation memo (sorted/hidden results), so concurrent requests
//     on one session serialize per session, not per server.
//   - internal/server: an RWMutex guards only the session map; sessions
//     are bounded by TTL and max-session LRU eviction; responses are
//     paginated (offset/limit) so a request encodes a row window, not
//     the whole table.
//
// Lock ordering is strictly server.mu → server entry.mu (per-session
// request serialization) → session.mu → cache shard mu
// (each released before the next is taken where possible, and never
// acquired in reverse), which makes deadlock impossible by
// construction. PERFORMANCE.md records the measured effect versus the
// previous global-mutex serving core.
//
// # Operation protocol
//
// The paper's user-level actions (§6.1) have a first-class, serializable
// representation: internal/ops defines a JSON tagged-union algebra
// (Open/Filter/FilterByNeighbor/Pivot/Single/Seeall/Sort/Hide/Show/
// Revert, plus ops.Pipeline for ordered batches) with Validate(schema)
// and Compile, so malformed operations are rejected — with the stable
// code invalid_op — before they touch any session. The op algebra is the
// single source of truth for session mutation:
//
//   - internal/session: Session.Apply executes one op, ApplyPipeline
//     executes a batch atomically (all-or-nothing with rollback), and
//     the imperative methods are thin wrappers. Every history entry
//     records its originating op, so Session.Export serializes a
//     session to a replayable operation log and Session.Replay
//     deterministically rebuilds identical state over the same graph —
//     which is also how sessions survive server-side eviction.
//   - internal/server: the versioned /api/v1 surface speaks ops
//     natively — POST .../ops applies a single op or an atomic batch
//     with one response snapshot, GET .../history exports the op log,
//     POST .../replay restores it, and errors use structured
//     {code, message, op_index} envelopes with proper 400/404/410
//     statuses. Results page by offset/limit or by opaque cursors that
//     detect staleness across state changes. The legacy unversioned
//     routes remain as deprecated aliases over the same core.
//   - pkg/client: the typed Go SDK (the first public package) with
//     per-op builders, retry/backoff, pagination iterators, and
//     history export/replay. docs/API.md documents every route.
//
// # Parallel execution
//
// PR 2 made sessions concurrent; this layer makes a single query
// concurrent, following the morsel-driven parallelism design of modern
// analytical engines:
//
//   - internal/exec: a bounded worker Pool shared process-wide. Pool
//     admission is try-acquire, never blocking: a query that finds the
//     pool busy degrades to serial on its own goroutine, so the pool
//     capacity (Options.MaxWorkers, default GOMAXPROCS) is a hard
//     server-wide bound on helper goroutines — 100 concurrent sessions
//     cannot spawn 100×Ncores workers. Each query additionally carries
//     a per-request parallelism budget.
//   - internal/graphrel: relations chunk into fixed 2048-row morsels
//     (Relation.Partitions / Concat); SelectPar, JoinPar, and
//     ProjectPar fan morsels out to the pool and splice per-morsel
//     outputs into one arena through disjoint windows — no locks on the
//     hot path, and output row-for-row identical to the serial kernels
//     (property-tested under -race).
//   - internal/stats: per-edge-type out-degree histograms and
//     per-node-type attribute NDV estimates, collected once at
//     translate time and frozen with the graph (stats.For). They
//     replace the single AvgOutDegree scalar in the planner's cost
//     model and drive condition-selectivity estimates.
//   - internal/etable: planJoins is a cost-based planner propagating
//     estimated cardinalities (JoinStep.EstIn/EstOut) through the join
//     tree; Execute takes an ExecOptions{Ctx, Pool, Parallelism}
//     struct, and EstimatePattern gates tiny queries onto the serial
//     path so interactive clicks never pay fan-out overhead.
//   - internal/session + internal/server: the per-request budget and
//     the request context thread through ApplyCtx/ApplyPipelineCtx/
//     StateCtx down to the kernels. Clients override the budget with
//     ?parallelism=N; a disconnected client cancels its context and the
//     query stops between morsels (HTTP 499 in logs). /api/v1/stats
//     reports the pool and the per-edge planner statistics.
//
// PERFORMANCE.md §5 records the scaling measurements
// (BenchmarkParallelScaling).
//
// # Adaptive planning
//
// Every execution entry point — eager, streaming, parallel, and the
// estimator — resolves its strategy through one function,
// etable.PlanFor: a per-frozen-graph, signature-keyed cache of fully
// prepared plans (compiled predicates, start relation, ordered join
// steps with cardinality estimates, parallel/streaming gate
// decisions). Pattern signatures are memoized on the immutable
// Pattern, so a warm lookup is a pointer load plus one map probe.
// The planner is adaptive: below a corpus-size threshold it uses
// greedy no-statistics ordering, above it the statistics-backed cost
// model (ExecOptions.Planner forces either). Executions record actual
// per-step cardinalities; when observed/estimated error exceeds a
// bound, the cached plan is re-planned from the measured sizes.
// /api/v1/stats exposes hits/misses/evictions, the greedy/cost split,
// and feedback replans; PERFORMANCE.md §8 records the cache effect
// and the greedy-vs-cost ablation that justifies the threshold.
//
// # Windowed presentation
//
// The format transformation (§5.4.2) is prepared and windowed rather
// than monolithic: etable.Prepare computes the row set, column layout,
// and per-column neighbor groupings without materializing a single
// cell, and etable.Presentation.Window (or the one-shot
// etable.TransformWindow) materializes any [offset, offset+limit) row
// range on demand. Row materialization partitions cleanly by row
// range, so Window fans the transformRange kernel out over the shared
// worker pool with the same disjoint-window splice discipline as the
// matching kernels — row- and cell-identical to the serial transform,
// equivalence-tested under -race.
//
// Pinning semantics: the session layer prepares one Presentation per
// pattern and pins the matched relation in the shared execution cache
// (etable.Cache.Pin via Executor.PrepareWithOpts). A pinned relation
// is exempt from LRU eviction, so every page of a result addresses the
// same relation — a page fetch costs O(window), never a re-match or a
// full re-render. Sort variants of one pattern share that single
// prepared presentation: Presentation.SortedView reorders only the row
// IDs (O(rows·log rows)) while sharing the column layout and neighbor
// groupings, so toggling sort direction never re-prepares. Sorting
// happens on the row order (no cells), so sort-then-page equals
// full-render-then-slice by construction.
//
// Cursor invalidation: HTTP cursors fingerprint the presentation state
// they were issued against; any op that changes the table invalidates
// them (409 stale_cursor), and the client re-pages the new state.
//
// Memory bound: pins are released when the per-session presentation
// memo (8 entries) evicts an entry, so at most sessions × 8 relations
// are pinned beyond the cache capacity; /api/v1/stats reports the
// current count as pinnedRelations.
//
// Allocation discipline in the transform: all cells of a window share
// one backing array, entity references are carved from one per-range
// arena (empty lists share a single slice), per-(group,value) hash
// dedup was replaced by sort-side compaction and a dense-ID bitmap
// (graphrel.Bitset), and non-string labels are interned per range so N
// rows referencing one node share one rendered string. PERFORMANCE.md
// §6 records the page-fetch measurements (BenchmarkFigure7Pipeline).
//
// # Persistence and datasets
//
// internal/snapshot serializes a frozen TGDB — schema, node columns,
// both adjacency directions, and the planner statistics — into a
// versioned columnar file (.etsnap) with per-section CRC-32C
// checksums; Load rebuilds a frozen graph that serves byte-identical
// query results without re-running translation (corrupt or
// version-skewed files fail with typed errors, never panics; see
// docs/SNAPSHOT.md for the format). internal/registry names many such
// datasets in one server process: each owns its own execution cache,
// plan cache, and statistics, lazy snapshot datasets load on first
// request (singleflight), and sessions bind to one dataset at
// creation. The HTTP surface grows /api/v1/datasets (list/inspect) and
// /api/v1/datasets/{name}/sessions/... routing, with the legacy
// unscoped routes serving the registry's default dataset unchanged.
// etable-translate -o writes a snapshot; etable-server -snapshot
// boots from one (3.8× faster than regenerate+translate at the
// 5k-paper default, PERFORMANCE.md §9) and repeatable -dataset
// name=path flags register more.
//
// # Out-of-core snapshots
//
// The snapshot tier also loads without materializing: snapshot.LazyLoad
// (etable-server -lazy) opens an .etsnap file by validating the header,
// section table, and skeleton sections only — O(section table), not
// O(corpus) — leaving every attribute column as an unresolved handle
// and every edge type's CSR arrays as a deferred conversion. Columns
// fault in through internal/pager, a bounded buffer pool (budget
// -pager-sections, default 64) with CRC verification on first fault,
// LRU eviction of unpinned sections, singleflight fault collapsing, and
// pin/unpin tied to the window-materialization discipline, so
// steady-state memory is the skeleton plus the pool budget regardless
// of corpus size. Damaged columns surface as typed *CorruptError values
// from the faulting query — never a panic, never poisoning the pool
// (repairing the file heals the next fault in place). The registry
// chooses eager or lazy boot per dataset (registry.SnapshotOptions),
// GET /api/v1/datasets describes snapshot files from their headers
// alone (fileBytes, fileSections), and /api/v1/stats exports per-
// dataset pager telemetry. PERFORMANCE.md §10 records the boot-latency
// and cold-window measurements (BenchmarkLazyBoot,
// BenchmarkColdWindowFault); a lazy-vs-eager fuzz and a GOMEMLIMIT
// smoke job in CI hold the equivalence and memory-bound claims.
//
// # Spill-to-disk execution
//
// The out-of-core tier bounds memory on the way *in* (base columns page
// from disk); the spill tier bounds it on the way *out*: a query whose
// result crosses the row cap (ExecOptions.MaxRows, etable-server
// -max-rows) no longer fails with 413 result_too_large — it
// materializes through internal/spill into temporary run files
// (snapshot NCOL column encoding, per-run CRC-32C, anonymous
// O_TMPFILE/unlink-on-open so a crash leaks nothing) and pages back
// through the same internal/pager buffer pool as lazy columns.
// internal/graphrel provides the external operator forms: RunSink
// accumulates streamed batches into fixed-size runs and exposes the
// window-addressable SpilledRelation; ExternalGroupFold and
// ExternalDistinct run sort-merge folds whose sorted-run flushes merge
// with cross-run deduplication, so grouping and distinct results far
// past the cap compute in bounded memory. Policy is per-dataset
// (graphrel.SpillPolicy via server Options{SpillDir, MaxSpillBytes};
// flags -spill-dir and -max-spill-bytes; "off" restores strict 413s),
// the byte budget rejects with the same unified
// {code, limit, rows} envelope as every other cap layer, damaged runs
// surface as typed *spill.CorruptError values with the session
// surviving, and files are reaped on session close, LRU eviction, and
// a boot-time sweep of named spill directories. /api/v1/stats reports
// a per-dataset spill block (spills, runBytes, mergePasses, faults);
// PERFORMANCE.md §11 records the first-page cost of a spilled result
// (≤1.6× in-memory at 53k and 313k rows, BenchmarkSpilledFirstPage),
// and CI's spill-smoke job browses a capped pivot end to end under
// GOMEMLIMIT=32MiB. A randomized spilled≡in-memory fuzz under -race
// holds the equivalence claim.
package repro
