// Package repro is a from-scratch Go reproduction of "Interactive
// Browsing and Navigation in Relational Databases" (Kahng, Navathe,
// Stasko, Chau; PVLDB 9(12), 2016) — the ETable presentation data model,
// the typed graph model it executes over, the incremental query
// operators and user-level actions, the three-tier system architecture,
// and the full evaluation harness that regenerates every table and
// figure of the paper. See README.md for a tour and DESIGN.md for the
// system inventory and experiment index.
//
// # Concurrent serving core
//
// The paper's §6.2 application server hosts many interactive users over
// one immutable TGDB. The serving stack is concurrent end to end:
//
//   - internal/tgm: the instance graph is frozen after translation
//     (InstanceGraph.Freeze); every read accessor is lock-free and safe
//     for unsynchronized concurrent use because nothing mutates.
//   - internal/graphrel: relations are immutable once built and shared
//     without copying (the package documents the sharing contract).
//   - internal/etable: one etable.Cache — sharded, mutex-per-shard,
//     true LRU, with singleflight deduplication — is shared by every
//     session, so N users executing the same pattern signature compute
//     it once. Executor is a thin per-session view over the cache.
//   - internal/session: each Session has its own mutex and a small
//     presentation memo (sorted/hidden results), so concurrent requests
//     on one session serialize per session, not per server.
//   - internal/server: an RWMutex guards only the session map; sessions
//     are bounded by TTL and max-session LRU eviction; responses are
//     paginated (offset/limit) so a request encodes a row window, not
//     the whole table.
//
// Lock ordering is strictly server.mu → server entry.mu (per-session
// request serialization) → session.mu → cache shard mu
// (each released before the next is taken where possible, and never
// acquired in reverse), which makes deadlock impossible by
// construction. PERFORMANCE.md records the measured effect versus the
// previous global-mutex serving core.
package repro
