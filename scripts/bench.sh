#!/bin/sh
# bench.sh — run the benchmark suite and record the results, so the
# repo's performance trajectory is tracked PR over PR.
#
# Usage: scripts/bench.sh [go-test-bench-regexp]
#        scripts/bench.sh smoke [go-test-bench-regexp]
#
# Writes BENCH_<date>.json (the `go test -json` event stream, which
# includes every benchmark result line with -benchmem statistics) and
# prints the human-readable results to stdout.
#
# Smoke mode (what CI runs) executes each benchmark for exactly one
# iteration and writes no artifact: it proves every benchmark still
# compiles and runs, without measuring anything.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "smoke" ]; then
	pattern="${2:-.}"
	exec go test -run '^$' -bench "$pattern" -benchtime 1x .
fi

pattern="${1:-.}"
stamp="$(date +%Y-%m-%d)"
out="BENCH_${stamp}.json"

status=0
go test -run '^$' -bench "$pattern" -benchmem -json . >"$out" || status=$?

grep -o '"Output":"[^"]*"' "$out" |
	sed -e 's/^"Output":"//' -e 's/"$//' -e 's/\\t/\t/g' -e 's/\\n$//' |
	grep -E '^Benchmark|ns/op|^(goos|goarch|pkg|cpu):|^(PASS|FAIL|ok)' |
	uniq

if [ "$status" -ne 0 ]; then
	echo "go test failed (exit $status); $out holds a partial event stream" >&2
	exit "$status"
fi
echo "wrote $out" >&2
