#!/bin/sh
# bench.sh — run the benchmark suite and record the results, so the
# repo's performance trajectory is tracked PR over PR.
#
# Usage: scripts/bench.sh [go-test-bench-regexp]
#        scripts/bench.sh --smoke [go-test-bench-regexp]   (alias: smoke)
#
# Writes BENCH_<date>.json (the `go test -json` event stream, which
# includes every benchmark result line with -benchmem statistics) and
# BENCH_<date>.txt (the plain benchmark lines in the format `benchstat`
# consumes), prints the human-readable results to stdout, and — when an
# earlier BENCH_*.json exists — prints a benchstat-comparable old-vs-new
# summary against the most recent one (and runs `benchstat` itself when
# the tool is installed).
#
# Smoke mode (what CI runs) executes each benchmark for exactly one
# iteration and writes no artifact: it proves every benchmark still
# compiles and runs, without measuring anything.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "smoke" ] || [ "${1:-}" = "--smoke" ]; then
	pattern="${2:-.}"
	# vet first so CI's smoke shard fails on bench-code rot even when a
	# benchmark would happen to run.
	go vet .
	exec go test -run '^$' -bench "$pattern" -benchtime 1x .
fi

pattern="${1:-.}"
stamp="$(date +%Y-%m-%d)"
out="BENCH_${stamp}.json"
txt="BENCH_${stamp}.txt"

# Environment stamp: benchmark numbers are meaningless without the
# parallelism envelope they ran under, so both artifacts record the
# effective GOMAXPROCS (the env override if set, else every CPU — the
# Go runtime's own default), the machine's CPU count, and the
# toolchain. In the .txt they are benchstat configuration lines
# (`key: value`), so benchstat refuses to blend runs from different
# envelopes; in the .json they are one leading metadata object ahead
# of the `go test -json` event stream.
numcpu="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo unknown)"
gomaxprocs="${GOMAXPROCS:-$numcpu}"
goversion="$(go version | awk '{print $3}')"
# The spill-tier benchmarks (BenchmarkSpilledFirstPage) are sensitive
# to the heap target and the device backing the spill directory, so the
# stamp records both: GOMEMLIMIT (the Go soft heap limit, "off" when
# unset) and the spill envelope (ETABLE_SPILL_DIR overrides the
# benchmarks' per-run temp dir; ETABLE_MAX_SPILL_BYTES a byte cap).
gomemlimit="${GOMEMLIMIT:-off}"
spilldir="${ETABLE_SPILL_DIR:-tmp}"
maxspillbytes="${ETABLE_MAX_SPILL_BYTES:-unbounded}"

# extract_bench turns a `go test -json` event stream into the plain
# benchmark text benchstat consumes. The stream emits a result line as
# two Output events — "BenchmarkX \t" then "N\tV ns/op…" — so a name
# line without values is rejoined with the event that follows it.
extract_bench() {
	grep -o '"Output":"[^"]*"' "$1" |
		sed -e 's/^"Output":"//' -e 's/"$//' -e 's/\\t/\t/g' -e 's/\\n$//' |
		awk '
			/^(goos|goarch|pkg|cpu):/ { print; next }
			/^Benchmark/ && /ns\/op/ { print; next }
			/^Benchmark/ { pending = $0; next }
			pending != "" && /ns\/op/ { print pending $0; pending = ""; next }
			{ pending = "" }
		'
}

# Remember the newest earlier artifact before writing today's.
prev="$(ls -1 BENCH_*.json 2>/dev/null | grep -v "^${out}\$" | sort | tail -n 1 || true)"

status=0
printf '{"BenchEnv":{"gomaxprocs":"%s","numcpu":"%s","go":"%s","gomemlimit":"%s","spillDir":"%s","maxSpillBytes":"%s"}}\n' \
	"$gomaxprocs" "$numcpu" "$goversion" "$gomemlimit" "$spilldir" "$maxspillbytes" >"$out"
go test -run '^$' -bench "$pattern" -benchmem -json . >>"$out" || status=$?

{
	printf 'gomaxprocs: %s\nnumcpu: %s\ngo-version: %s\n' \
		"$gomaxprocs" "$numcpu" "$goversion"
	printf 'gomemlimit: %s\nspill-dir: %s\nmax-spill-bytes: %s\n' \
		"$gomemlimit" "$spilldir" "$maxspillbytes"
	extract_bench "$out"
} >"$txt"
grep -o '"Output":"[^"]*"' "$out" |
	sed -e 's/^"Output":"//' -e 's/"$//' -e 's/\\t/\t/g' -e 's/\\n$//' |
	grep -E '^Benchmark|ns/op|^(goos|goarch|pkg|cpu):|^(PASS|FAIL|ok)' |
	uniq

if [ "$status" -ne 0 ]; then
	echo "go test failed (exit $status); $out holds a partial event stream" >&2
	exit "$status"
fi

if [ -n "$prev" ]; then
	prevtxt="${prev%.json}.txt"
	if [ ! -f "$prevtxt" ]; then
		prevtxt="$(mktemp)"
		extract_bench "$prev" >"$prevtxt"
	fi
	echo ""
	echo "== vs ${prev} =="
	if command -v benchstat >/dev/null 2>&1; then
		benchstat "$prevtxt" "$txt" || true
	else
		# Fallback: join on benchmark name, compare ns/op, B/op, and
		# allocs/op deltas. The .txt artifacts remain benchstat-ready:
		# `benchstat old.txt new.txt`. Files are told apart by FILENAME,
		# not the FNR==NR idiom — an empty or name-less previous artifact
		# would otherwise misclassify every new line as "old" and
		# silently print no comparison at all. Benchmarks absent from the
		# previous artifact are marked "new benchmark" instead of
		# skipped.
		awk -v OLD="$prevtxt" '
			function val(unit,   i) {
				for (i = 2; i <= NF; i++) if ($i == unit) return $(i - 1)
				return ""
			}
			function delta(o, n) {
				if (o == "" || n == "") return "        -"
				if (o == 0) return "        -"
				return sprintf("%+8.1f%%", (n - o) * 100.0 / o)
			}
			!/^Benchmark/ { next }
			{
				ns = val("ns/op"); bb = val("B/op"); al = val("allocs/op")
				if (ns == "") next
				if (FILENAME == OLD) {
					oldns[$1] = ns; oldb[$1] = bb; olda[$1] = al
					next
				}
				if ($1 in oldns) {
					printf "%-60s ns/op %s  B/op %s  allocs/op %s\n",
						$1, delta(oldns[$1], ns), delta(oldb[$1], bb), delta(olda[$1], al)
				} else {
					printf "%-60s (new benchmark: %.0f ns/op, %s B/op, %s allocs/op)\n",
						$1, ns, (bb == "" ? "-" : bb), (al == "" ? "-" : al)
				}
			}
		' "$prevtxt" "$txt"
		echo "(install benchstat for confidence intervals: go install golang.org/x/perf/cmd/benchstat@latest)"
	fi
fi
echo "wrote $out and $txt" >&2
