#!/bin/sh
# check.sh — the repo's full verification gate: build everything, vet,
# and run all tests with the race detector (the serving core is
# concurrent; -race is not optional). CI runs exactly this script.
#
# Usage: scripts/check.sh [go-test-run-regexp]
set -eu

cd "$(dirname "$0")/.."

pattern="${1:-.}"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> staticcheck ./..."
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi

echo "==> go test -race ./..."
go test -race -run "$pattern" ./...

echo "OK"
